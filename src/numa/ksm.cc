#include "numa/ksm.hh"

#include <utility>

#include "sim/logging.hh"

namespace latr
{

KsmDaemon::KsmDaemon(Kernel &kernel, Duration scan_interval,
                     unsigned merges_per_round)
    : kernel_(kernel), scanInterval_(scan_interval),
      mergesPerRound_(merges_per_round), scanEvent_(this)
{
}

KsmDaemon::~KsmDaemon()
{
    stop();
}

void
KsmDaemon::track(Process *process)
{
    tracked_.push_back(process);
}

void
KsmDaemon::start()
{
    if (running_)
        return;
    running_ = true;
    kernel_.queue().schedule(&scanEvent_,
                             kernel_.now() + scanInterval_);
}

void
KsmDaemon::stop()
{
    if (!running_)
        return;
    running_ = false;
    if (scanEvent_.scheduled())
        kernel_.queue().deschedule(&scanEvent_);
}

Duration
KsmDaemon::merge(Process *dup, Vpn dup_vpn, Process *survivor,
                 Vpn survivor_vpn, Pfn survivor_frame)
{
    AddressSpace &mm = dup->mm();
    Task *context =
        dup->tasks().empty() ? nullptr : dup->tasks().front();
    Task *s_context = survivor->tasks().empty()
                          ? nullptr
                          : survivor->tasks().front();
    if (!context || !s_context)
        return 0;
    Pte *pte = mm.pageTable().find(dup_vpn);
    if (!pte || pte->protNone())
        return 0;
    const Pfn dup_frame = pte->pfn;
    if (dup_frame == survivor_frame)
        return 0;
    AddressSpace &s_mm = survivor->mm();
    Pte *s_pte = s_mm.pageTable().find(survivor_vpn);
    if (!s_pte || s_pte->pfn != survivor_frame)
        return 0; // survivor changed since it was recorded

    Duration spent = 0;
    const CoreId core = context->core();

    // 1. Revoke write access on BOTH mappings and mark them CoW —
    //    synchronously, under every policy (ownership change,
    //    table 1): after this no core can modify either copy, so
    //    the copies stay identical.
    pte->flags |= kPteCow;
    pte->flags &= static_cast<std::uint8_t>(~kPteWrite);
    kernel_.scheduler().tlbOf(core).invalidatePage(dup_vpn,
                                                   mm.pcid());
    spent += kernel_.cost().invlpg;
    spent += kernel_.policy()->onSyncShootdown(
        &mm, core, dup_vpn, dup_vpn, 1, kernel_.now() + spent);

    if (!s_pte->cow()) {
        s_pte->flags |= kPteCow;
        s_pte->flags &= static_cast<std::uint8_t>(~kPteWrite);
        kernel_.scheduler()
            .tlbOf(s_context->core())
            .invalidatePage(survivor_vpn, s_mm.pcid());
        spent += kernel_.cost().invlpg;
        spent += kernel_.policy()->onSyncShootdown(
            &s_mm, s_context->core(), survivor_vpn, survivor_vpn, 1,
            kernel_.now() + spent);
    }

    // 2. Switch the duplicate's PTE to the survivor's frame.
    kernel_.frames().get(survivor_frame);
    pte->pfn = survivor_frame;

    // 3. Release the duplicate frame through the coherence policy's
    //    free path — lazy under LATR. Stale translations still
    //    reading the duplicate read identical bytes; the sweep (or
    //    IPI) retires them before the frame is reused.
    FreeOpContext ctx;
    ctx.mm = &mm;
    ctx.initiator = core;
    ctx.startVpn = dup_vpn;
    ctx.endVpn = dup_vpn;
    ctx.pages.emplace_back(dup_vpn, dup_frame);
    ctx.vaStart = 0; // the virtual page stays mapped (new frame)
    ctx.vaEnd = 0;
    spent += kernel_.policy()->onFreePages(std::move(ctx),
                                           kernel_.now() + spent);

    ++stats_.merges;
    ++stats_.framesFreed;
    kernel_.stats().counter("ksm.merges").inc();
    return spent;
}

void
KsmDaemon::scan()
{
    // tag -> the surviving copy seen first this round.
    struct Survivor
    {
        Process *process;
        Vpn vpn;
        Pfn pfn;
    };
    std::unordered_map<std::uint64_t, Survivor> seen;

    unsigned merged = 0;
    Duration spent = 0;
    Task *context = nullptr;

    for (Process *process : tracked_) {
        if (merged >= mergesPerRound_)
            break;
        AddressSpace &mm = process->mm();
        if (!process->tasks().empty())
            context = process->tasks().front();

        // Collect (vpn, tag, pfn) candidates first; merging mutates
        // the page table, so it happens outside the walk.
        std::vector<std::pair<Vpn, std::uint64_t>> tagged;
        for (const auto &kv : mm.vmas()) {
            const Vma &vma = kv.second;
            mm.pageTable().forEachPresent(
                pageOf(vma.start), pageOf(vma.end) - 1,
                [&](Vpn vpn, Pte &pte) {
                    if (pte.protNone())
                        return;
                    const std::uint64_t tag = mm.contentTag(vpn);
                    if (tag != 0)
                        tagged.emplace_back(vpn, tag);
                });
        }

        for (const auto &[vpn, tag] : tagged) {
            if (merged >= mergesPerRound_)
                break;
            ++stats_.pagesScanned;
            spent += kernel_.cost().memAccess * 64; // checksum pass
            Pte *pte = mm.pageTable().find(vpn);
            if (!pte)
                continue;
            auto it = seen.find(tag);
            if (it == seen.end()) {
                seen.emplace(tag, Survivor{process, vpn, pte->pfn});
                continue;
            }
            if (it->second.pfn == pte->pfn)
                continue; // already sharing
            spent += merge(process, vpn, it->second.process,
                           it->second.vpn, it->second.pfn);
            ++merged;
        }
    }
    if (context)
        kernel_.scheduler().chargeStolen(context->core(), spent);

    kernel_.queue().schedule(&scanEvent_,
                             kernel_.now() + scanInterval_);
}

} // namespace latr
