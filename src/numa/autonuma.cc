#include "numa/autonuma.hh"

#include "sim/logging.hh"

namespace latr
{

AutoNuma::AutoNuma(Kernel &kernel, Duration scan_interval,
                   unsigned pages_per_scan)
    : kernel_(kernel), scanInterval_(scan_interval),
      pagesPerScan_(pages_per_scan), migrator_(kernel),
      scanEvent_(this)
{
}

AutoNuma::~AutoNuma()
{
    stop();
}

void
AutoNuma::track(Process *process)
{
    tracked_.push_back(process);
}

void
AutoNuma::setScanStride(std::uint64_t stride)
{
    scanStride_ = stride == 0 ? 1 : stride;
}

void
AutoNuma::start()
{
    if (running_)
        return;
    running_ = true;
    kernel_.setNumaFaultHook([this](Vpn vpn, CoreId core) {
        return onHintFault(vpn, core);
    });
    kernel_.queue().schedule(&scanEvent_,
                             kernel_.now() + scanInterval_);
}

void
AutoNuma::stop()
{
    if (!running_)
        return;
    running_ = false;
    if (scanEvent_.scheduled())
        kernel_.queue().deschedule(&scanEvent_);
    kernel_.setNumaFaultHook(nullptr);
}

void
AutoNuma::scan()
{
    if (tracked_.empty()) {
        kernel_.queue().schedule(&scanEvent_,
                                 kernel_.now() + scanInterval_);
        return;
    }

    Process *process = tracked_[nextProcess_ % tracked_.size()];
    AddressSpace &mm = process->mm();

    // The scan runs in task context (task_numa_work); use the
    // process's first task as the sampling context.
    Task *context =
        process->tasks().empty() ? nullptr : process->tasks().front();
    if (!context) {
        nextProcess_++;
        kernel_.queue().schedule(&scanEvent_,
                                 kernel_.now() + scanInterval_);
        return;
    }

    // Collect the next batch of sampled pages: sequential from the
    // cursor when the stride is 1, every stride-th present page
    // (rotating phase) otherwise.
    std::vector<Vpn> batch;
    std::uint64_t index = 0;
    for (const auto &kv : mm.vmas()) {
        const Vma &vma = kv.second;
        Vpn first = pageOf(vma.start);
        Vpn last = pageOf(vma.end) - 1;
        if (scanStride_ == 1 && last < scanCursor_)
            continue;
        mm.pageTable().forEachPresent(
            scanStride_ == 1 ? std::max(first, scanCursor_) : first,
            last, [&](Vpn vpn, Pte &pte) {
                if (batch.size() >= pagesPerScan_ || pte.protNone())
                    return;
                if (scanStride_ == 1 ||
                    index++ % scanStride_ == stridePhase_)
                    batch.push_back(vpn);
            });
        if (batch.size() >= pagesPerScan_)
            break;
    }
    if (scanStride_ > 1) {
        stridePhase_ = (stridePhase_ + 1) % scanStride_;
        ++nextProcess_;
    } else if (batch.empty()) {
        // Wrapped: restart from the beginning next round.
        scanCursor_ = 0;
        ++nextProcess_;
    } else {
        scanCursor_ = batch.back() + 1;
    }

    Duration spent = 0;
    for (Vpn vpn : batch) {
        spent += kernel_.cost().numaScanPerPage;
        spent += kernel_.numaSample(context, vpn);
        ++samples_;
    }
    // The scan work runs on the context task's core.
    kernel_.scheduler().chargeStolen(context->core(), spent);

    kernel_.queue().schedule(&scanEvent_,
                             kernel_.now() + scanInterval_);
}

Duration
AutoNuma::onHintFault(Vpn vpn, CoreId core)
{
    ++hintFaults_;
    AddressSpace *mm = nullptr;
    Task *task = kernel_.scheduler().currentTask(core);
    if (!task)
        return 0;
    mm = &task->mm();

    Duration spent = 0;

    Pte *pte = mm->pageTable().find(vpn);
    if (!pte || !pte->protNone())
        return spent; // resolved concurrently

    // Restore accessibility.
    pte->flags &= static_cast<std::uint8_t>(~kPteProtNone);

    // Migration decision: second fault in a row from the same
    // remote node migrates the page there.
    const NodeId here = kernel_.topo().nodeOf(core);
    const NodeId page_node = mm->frames().nodeOf(pte->pfn);
    if (here == page_node) {
        lastRemoteFault_.erase(vpn);
        return spent;
    }
    auto it = lastRemoteFault_.find(vpn);
    if (!twoTouch_ ||
        (it != lastRemoteFault_.end() && it->second == here)) {
        if (it != lastRemoteFault_.end())
            lastRemoteFault_.erase(it);
        // Migration must not proceed while any core may still write
        // through a stale translation: lazy policies gate the
        // migrating fault until every core has invalidated the
        // sampled page (paper 4.4). Non-migrating faults never wait.
        const Tick now = kernel_.now();
        const Tick ready = kernel_.policy()->numaSampleReadyAt(mm, vpn);
        if (ready > now)
            spent += ready - now;
        spent += migrator_.migrate(task, vpn, here);
    } else {
        lastRemoteFault_[vpn] = here;
    }
    return spent;
}

} // namespace latr
