#include "numa/migration.hh"

#include "trace/trace.hh"

namespace latr
{

PageMigrator::PageMigrator(Kernel &kernel)
    : kernel_(kernel)
{
}

Duration
PageMigrator::migrate(Task *task, Vpn vpn, NodeId target)
{
    AddressSpace &mm = task->mm();
    FrameAllocator &frames = mm.frames();
    Pte *pte = mm.pageTable().find(vpn);
    if (!pte)
        return 0; // raced with unmap
    const Pfn old = pte->pfn;
    if (frames.nodeOf(old) == target)
        return 0; // already local

    const Pfn fresh = frames.alloc(target);
    if (fresh == kPfnInvalid)
        return 0; // target node full: abort, like Linux
    return migrateToFrame(task, vpn, fresh);
}

Duration
PageMigrator::migrateToFrame(Task *task, Vpn vpn, Pfn fresh,
                             bool *moved_out)
{
    if (moved_out)
        *moved_out = false;
    AddressSpace &mm = task->mm();
    FrameAllocator &frames = mm.frames();
    Pte *pte = mm.pageTable().find(vpn);
    if (!pte || pte->pfn == fresh) {
        frames.put(fresh);
        return 0;
    }
    const Pfn old = pte->pfn;

    const CostModel &cost = kernel_.cost();
    const CoreId core = task->core();
    const Tick begin = kernel_.now();
    Duration spent = cost.migrateBase;

    // try_to_unmap: remove the translation, invalidate locally, and
    // shoot it down synchronously — migration cannot copy while any
    // core can still write the old frame. This shootdown exists
    // under every policy; LATR only removed the *sampling* one.
    Pte saved = mm.pageTable().unmap(vpn);
    kernel_.scheduler().tlbOf(core).invalidatePage(vpn, mm.pcid());
    spent += cost.pteClearPerPage + cost.invlpg;
    const Duration wait = kernel_.policy()->onSyncShootdown(
        &mm, core, vpn, vpn, 1, kernel_.now() + spent);
    spent += wait;

    // Copy and remap onto the target node.
    spent += cost.migrateCopyPerPage;
    std::uint8_t flags = static_cast<std::uint8_t>(
        saved.flags & ~(kPtePresent | kPteProtNone));
    mm.pageTable().map(vpn, fresh, flags);

    // The old frame returns to the pool once the shootdown is
    // complete (every invalidation event precedes the last ACK).
    kernel_.queue().scheduleLambda(kernel_.now() + spent,
                                   [&frames, old]() {
                                       frames.put(old);
                                   });

    ++migrations_;
    kernel_.stats().counter("numa.migrations").inc();
    if (TraceRecorder *t = kernel_.tracer()) {
        if (t->enabled()) {
            const SpanId span = t->beginSpan(
                "numa", "numa.migrate", begin, core, mm.id(), vpn);
            t->endSpan(span, begin + spent);
        }
    }
    if (moved_out)
        *moved_out = true;
    return spent;
}

} // namespace latr
