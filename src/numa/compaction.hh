/**
 * @file
 * Memory compaction (the kcompactd analogue) — another row of the
 * paper's table 1 that admits a lazy shootdown. The daemon
 * defragments a NUMA node by migrating in-use pages out of the
 * node's high frame region into free frames in the low region, so
 * contiguous high-frame runs open up (for huge pages / DMA in a
 * real kernel). Each move follows the migration recipe: sample the
 * page through the coherence policy (lazy under LATR — no IPI; the
 * first sweeping core performs the prot-none unmap), wait out the
 * policy's gate, then migrate with the unmap-copy-remap sequence.
 * The paper's section 7 points out compaction "performs similar
 * mechanism as AutoNUMA's page migration" and benefits the same way.
 */

#ifndef LATR_NUMA_COMPACTION_HH_
#define LATR_NUMA_COMPACTION_HH_

#include <unordered_map>
#include <vector>

#include "os/kernel.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace latr
{

/** Defragmentation statistics for one node. */
struct CompactionStats
{
    /** Pages moved low so far. */
    std::uint64_t pagesMoved = 0;
    /** Samples issued (each costs a shootdown — lazy under LATR). */
    std::uint64_t samples = 0;
    /** Moves that aborted (page vanished, no low frame free). */
    std::uint64_t aborts = 0;
};

/**
 * Background compaction daemon. Tracks one or more processes (like
 * the swap daemon) and, each period, picks pages of a target node
 * whose frames lie in the node's upper half and migrates them into
 * lower free frames.
 */
class CompactionDaemon
{
  public:
    /**
     * @param kernel the kernel.
     * @param node node to defragment.
     * @param scan_interval period between compaction rounds.
     * @param moves_per_round migration batch bound.
     */
    CompactionDaemon(Kernel &kernel, NodeId node,
                     Duration scan_interval, unsigned moves_per_round);

    ~CompactionDaemon();

    CompactionDaemon(const CompactionDaemon &) = delete;
    CompactionDaemon &operator=(const CompactionDaemon &) = delete;

    /** Consider @p process's pages for compaction. */
    void track(Process *process);

    void start();
    void stop();

    const CompactionStats &stats() const { return stats_; }

    /**
     * Fragmentation metric of the node: fraction of allocated
     * frames that sit in the node's upper half. 0 = fully
     * compacted.
     */
    double highFrameFraction() const;

  private:
    class RoundEvent : public Event
    {
      public:
        explicit RoundEvent(CompactionDaemon *cd) : cd_(cd) {}
        void process() override { cd_->round(); }
        const char *name() const override { return "compact-round"; }

      private:
        CompactionDaemon *cd_;
    };

    /** One candidate mid-move: sampled, waiting for the gate. */
    struct PendingMove
    {
        Process *process;
        Vpn vpn;
    };

    /** Phase 1: sample a batch of high-frame pages. */
    void round();

    /** Phase 2 (event): complete the sampled moves. */
    void completeMoves(std::vector<PendingMove> moves);

    /** First frame of the node's upper half. */
    Pfn highWatermark() const;

    Kernel &kernel_;
    NodeId node_;
    Duration scanInterval_;
    unsigned movesPerRound_;
    RoundEvent roundEvent_;
    bool running_ = false;

    std::vector<Process *> tracked_;
    CompactionStats stats_;
};

} // namespace latr

#endif // LATR_NUMA_COMPACTION_HH_
