/**
 * @file
 * A page-swap daemon exercising the other "migration-class" lazy
 * operation of the paper's table 1: swapping cold pages out. The
 * daemon harvests PTE accessed bits on a period (a one-hand clock
 * approximation of the kernel's LRU), and evicts pages that stayed
 * cold for a full period. The unmap goes through the coherence
 * policy's free path, so under LATR the shootdown and the frame
 * release are lazy (section 3: "with an LRU-based page swapping
 * algorithm, the page table unmap and swap operation can be
 * performed lazily after the last core has invalidated the TLB
 * entry").
 */

#ifndef LATR_NUMA_SWAP_HH_
#define LATR_NUMA_SWAP_HH_

#include <unordered_set>
#include <vector>

#include "os/kernel.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace latr
{

/** Clock-style page-out daemon. */
class SwapDaemon
{
  public:
    /**
     * @param kernel the kernel.
     * @param scan_interval period between eviction scans.
     * @param max_evictions_per_scan eviction batch bound.
     */
    SwapDaemon(Kernel &kernel, Duration scan_interval,
               unsigned max_evictions_per_scan);

    ~SwapDaemon();

    SwapDaemon(const SwapDaemon &) = delete;
    SwapDaemon &operator=(const SwapDaemon &) = delete;

    /** Consider @p process's pages for eviction. */
    void track(Process *process);

    void start();
    void stop();

    /** A page previously swapped out that was faulted back in. */
    bool wasSwappedOut(MmId mm, Vpn vpn) const;

    std::uint64_t evictions() const { return evictions_; }

  private:
    class ScanEvent : public Event
    {
      public:
        explicit ScanEvent(SwapDaemon *sd) : sd_(sd) {}
        void process() override { sd_->scan(); }
        const char *name() const override { return "swap-scan"; }

      private:
        SwapDaemon *sd_;
    };

    void scan();

    Kernel &kernel_;
    Duration scanInterval_;
    unsigned maxEvictions_;
    ScanEvent scanEvent_;
    bool running_ = false;

    std::vector<Process *> tracked_;
    std::unordered_set<std::uint64_t> swappedOut_;
    std::uint64_t evictions_ = 0;
};

} // namespace latr

#endif // LATR_NUMA_SWAP_HH_
