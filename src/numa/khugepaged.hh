/**
 * @file
 * Transparent huge-page promotion (the khugepaged analogue),
 * completing the section 7 huge-page extension. The daemon scans
 * tracked processes for 2 MiB-aligned regions whose 512 base pages
 * are all present and unencumbered (no prot-none samples, no CoW),
 * copies them into a freshly allocated contiguous huge frame, and
 * replaces the 512 PTEs with one PMD mapping. The collapse changes
 * physical addresses, so its shootdown is synchronous under every
 * policy (the remap row of table 1) — what LATR buys is downstream:
 * once the region is huge, its eventual free is one lazy state
 * instead of 512 pages of work.
 */

#ifndef LATR_NUMA_KHUGEPAGED_HH_
#define LATR_NUMA_KHUGEPAGED_HH_

#include <vector>

#include "os/kernel.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace latr
{

/** Promotion statistics. */
struct KhugepagedStats
{
    std::uint64_t promotions = 0;
    std::uint64_t regionsScanned = 0;
    /** Candidates dropped (holes, CoW/sampled pages, no huge frame). */
    std::uint64_t aborts = 0;
};

/** Background transparent-huge-page promotion daemon. */
class Khugepaged
{
  public:
    /**
     * @param kernel the kernel.
     * @param scan_interval period between promotion scans.
     * @param promotions_per_round collapse batch bound.
     */
    Khugepaged(Kernel &kernel, Duration scan_interval,
               unsigned promotions_per_round);

    ~Khugepaged();

    Khugepaged(const Khugepaged &) = delete;
    Khugepaged &operator=(const Khugepaged &) = delete;

    /** Consider @p process's regions for promotion. */
    void track(Process *process);

    void start();
    void stop();

    const KhugepagedStats &stats() const { return stats_; }

  private:
    class ScanEvent : public Event
    {
      public:
        explicit ScanEvent(Khugepaged *kh) : kh_(kh) {}
        void process() override { kh_->scan(); }
        const char *name() const override { return "khugepaged"; }

      private:
        Khugepaged *kh_;
    };

    void scan();

    /**
     * Collapse [base_vpn, base_vpn + 512) of @p process into a huge
     * mapping. @return CPU time spent, 0 on abort.
     */
    Duration collapse(Process *process, Vpn base_vpn);

    Kernel &kernel_;
    Duration scanInterval_;
    unsigned promotionsPerRound_;
    ScanEvent scanEvent_;
    bool running_ = false;

    std::vector<Process *> tracked_;
    KhugepagedStats stats_;
};

} // namespace latr

#endif // LATR_NUMA_KHUGEPAGED_HH_
