#include "workload/lowshootdown.hh"

#include "machine/machine.hh"
#include "sim/logging.hh"
#include "workload/parsec.hh"
#include "workload/webserver.hh"

namespace latr
{

const std::vector<LowShootdownCase> &
lowShootdownCases()
{
    using Kind = LowShootdownCase::Kind;
    static const std::vector<LowShootdownCase> cases = {
        {"nginx_1", Kind::Nginx, 1, nullptr},
        {"apache_1", Kind::Apache, 1, nullptr},
        {"bodytrack_16", Kind::Parsec, 16, "bodytrack"},
        {"canneal_16", Kind::Parsec, 16, "canneal"},
        {"facesim_16", Kind::Parsec, 16, "facesim"},
        {"ferret_16", Kind::Parsec, 16, "ferret"},
        {"streamcluster_16", Kind::Parsec, 16, "streamcluster"},
    };
    return cases;
}

LowShootdownResult
runLowShootdownCase(const MachineConfig &base, PolicyKind policy,
                    const LowShootdownCase &c)
{
    Machine machine(base, policy);
    LowShootdownResult result;
    result.name = c.name;

    switch (c.kind) {
      case LowShootdownCase::Kind::Nginx:
      case LowShootdownCase::Kind::Apache: {
        WebServerConfig cfg;
        cfg.workers = c.cores;
        cfg.processes = 1;
        cfg.mmapPerRequest = c.kind == LowShootdownCase::Kind::Apache;
        WebServerWorkload server(machine, cfg);
        const Duration measured = 200 * kMsec;
        WebServerResult r = server.measure(50 * kMsec, measured);
        result.performance = r.requestsPerSec;
        result.shootdownsPerSec = r.shootdownsPerSec;
        break;
      }
      case LowShootdownCase::Kind::Parsec: {
        ParsecResult r = runParsec(
            machine, parsecProfile(c.parsecName), c.cores);
        result.performance =
            r.runtimeNs ? 1e9 / static_cast<double>(r.runtimeNs) : 0.0;
        result.shootdownsPerSec = r.shootdownsPerSec;
        break;
      }
    }
    return result;
}

} // namespace latr
