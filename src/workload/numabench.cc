#include "workload/numabench.hh"

#include <algorithm>

#include "numa/autonuma.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workload/workload.hh"

namespace latr
{

const std::vector<NumaBenchProfile> &
numaBenchSuite()
{
    // Field order: name, arrayPages, computePerIter, touchPages,
    // itersPerCore, scanInterval, pagesPerScan.
    //
    // graph500's irregular BFS touches the most remote pages and
    // migrates the most (the paper's biggest winner at 5.7%);
    // pbzip2 is dominated by compression CPU, so migration hardly
    // moves its runtime.
    static const std::vector<NumaBenchProfile> suite = {
        {"fluidanimate", 12288, 40 * kUsec, 10, 1200, 10 * kMsec, 96},
        {"ocean_cp", 16384, 36 * kUsec, 12, 1300, 10 * kMsec, 112},
        {"graph500", 24576, 30 * kUsec, 16, 1500, 8 * kMsec, 160},
        {"pbzip2", 8192, 70 * kUsec, 4, 900, 12 * kMsec, 48},
        {"metis", 16384, 44 * kUsec, 10, 1100, 10 * kMsec, 112},
    };
    return suite;
}

namespace
{

/** One NUMA-bench worker over its slice of the shared array. */
class NumaWorker : public CoreActor
{
  public:
    NumaWorker(Machine &machine, Task *task,
               const NumaBenchProfile &profile, Addr base,
               std::uint64_t first_page, std::uint64_t page_count,
               std::uint64_t iters, std::uint64_t seed)
        : CoreActor(machine, task), profile_(profile), base_(base),
          firstPage_(first_page), pageCount_(page_count),
          left_(iters), rng_(seed)
    {
    }

  protected:
    Duration
    step() override
    {
        if (left_ == 0)
            return kActorDone;
        --left_;

        Duration d = profile_.computePerIter;
        for (unsigned t = 0; t < profile_.touchPages; ++t) {
            const std::uint64_t page =
                firstPage_ + rng_.nextBounded(pageCount_);
            TouchResult r = kernel().touch(
                task(), base_ + page * kPageSize, (t & 3) == 0);
            d += r.latency;
        }
        return d;
    }

  private:
    const NumaBenchProfile &profile_;
    Addr base_;
    std::uint64_t firstPage_;
    std::uint64_t pageCount_;
    std::uint64_t left_;
    Rng rng_;
};

} // namespace

NumaBenchResult
runNumaBench(Machine &machine, const NumaBenchProfile &profile,
             unsigned cores)
{
    cores = std::min(cores, machine.topo().totalCores());
    Kernel &kernel = machine.kernel();
    Process *process = kernel.createProcess(profile.name);

    // First-touch the whole array from core 0 (node 0): the classic
    // NUMA-unfriendly initialization AutoNUMA exists to repair.
    Task *init = kernel.spawnTask(process, 0);
    SyscallResult m = kernel.mmap(
        process->tasks().front(), profile.arrayPages * kPageSize,
        kProtRead | kProtWrite);
    if (!m.ok)
        fatal("numabench array mmap failed");
    for (std::uint64_t p = 0; p < profile.arrayPages; ++p) {
        kernel.touch(init, m.addr + p * kPageSize, true);
        if ((p & 1023) == 0)
            machine.run(50 * kUsec); // pace the init phase
    }

    AutoNuma autonuma(kernel, profile.scanInterval,
                      profile.pagesPerScan);
    autonuma.track(process);
    // The scan period is long relative to these runs, so a sampled
    // page is rarely sampled twice; migrate on the first remote
    // fault (see AutoNuma::setTwoTouch).
    autonuma.setTwoTouch(false);
    autonuma.setScanStride(
        std::max<std::uint64_t>(1, profile.arrayPages /
                                       profile.pagesPerScan));
    autonuma.start();

    // Workers across all cores; each owns a slice of the array.
    std::vector<std::unique_ptr<CoreActor>> actors;
    const std::uint64_t slice = profile.arrayPages / cores;
    for (CoreId c = 0; c < cores; ++c) {
        Task *task = (c == 0) ? init : kernel.spawnTask(process, c);
        auto worker = std::make_unique<NumaWorker>(
            machine, task, profile, m.addr, c * slice, slice,
            profile.itersPerCore, 0x10a17 + c);
        worker->start(machine.now() + c * kUsec + 1);
        actors.push_back(std::move(worker));
    }

    const Tick t0 = machine.now();
    const Tick finish =
        runToCompletion(machine, actors, t0 + 120 * kSec);
    autonuma.stop();

    NumaBenchResult result;
    result.name = profile.name;
    result.runtimeNs = finish - t0;
    result.migrations = autonuma.migrations();
    result.samples = autonuma.samples();
    result.migrationsPerSec =
        ratePerSecond(result.migrations, result.runtimeNs);
    return result;
}

} // namespace latr
