/**
 * @file
 * The munmap() microbenchmark of the paper's section 6.2.1
 * (figures 6, 7, and 8): a set of pages is mapped and touched by a
 * configurable number of sharing cores, then the initiating core
 * munmaps it, forcing a TLB shootdown on every participant; the
 * munmap latency and its shootdown component are recorded, and the
 * whole cycle repeats.
 */

#ifndef LATR_WORKLOAD_MICROBENCH_HH_
#define LATR_WORKLOAD_MICROBENCH_HH_

#include <cstdint>

#include "machine/machine.hh"
#include "sim/types.hh"

namespace latr
{

/** Parameters of the munmap microbenchmark. */
struct MunmapMicrobenchConfig
{
    /** Cores sharing the pages (core 0 initiates the munmap). */
    unsigned sharingCores = 16;
    /** Pages mapped, touched, and unmapped per iteration. */
    std::uint64_t pages = 1;
    /** Iterations (the paper runs 250k; scale to sim budget). */
    unsigned iterations = 300;
    /** Warmup iterations excluded from the statistics. */
    unsigned warmupIterations = 20;
    /**
     * Pacing between iterations. The paper's harness re-maps and
     * re-shares the pages each round, which spaces the munmaps
     * naturally; the explicit gap keeps the LATR ring (64 slots per
     * core against a 2 ms reclamation horizon) from overflowing at
     * unrealistic back-to-back rates.
     */
    Duration interIterationGap = 50 * kUsec;
};

/** Microbenchmark outcome. */
struct MunmapMicrobenchResult
{
    double munmapMeanNs = 0.0;
    double shootdownMeanNs = 0.0;
    double munmapP99Ns = 0.0;
    std::uint64_t latrFallbacks = 0;
    /** Peak bytes parked on LATR lazy lists (section 6.4). */
    std::uint64_t lazyBytesPeak = 0;
};

/**
 * Run the microbenchmark on @p machine. The machine must be fresh
 * (no other workload).
 */
MunmapMicrobenchResult runMunmapMicrobench(
    Machine &machine, const MunmapMicrobenchConfig &config);

} // namespace latr

#endif // LATR_WORKLOAD_MICROBENCH_HH_
