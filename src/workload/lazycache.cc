#include "workload/lazycache.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"
#include "tlbcoh/policy.hh"

namespace latr
{

namespace
{

/** Steps declare footprints so lazycache is no barrier when threaded. */
void
declareStepWrites(EventFootprint &fp, CoreId core, const void *mm)
{
    // One step mutates: this core's TLB and stolen-time account,
    // the shared mm (PTEs, sharer map, residency), and — via minor
    // faults — the frame allocator's free lists. No compute() phase,
    // so no read declarations: commits replay in (tick, seq) order
    // and tolerate write/write overlap between steps.
    fp.writeCore(core);
    fp.writeSpace(mm);
    fp.writeGlobal(SimResource::FrameAllocator);
}

} // namespace

/**
 * One reader thread: pick a page (hot-biased), take the optimistic
 * read lock — remember the generation, read the payload, revalidate
 * — and refill the page on a discard, as lazyfree_cache's
 * LAZYFREE_LOCK_CHECK path does when the kernel reclaimed the page
 * under the reader.
 */
class LazyCacheWorkload::Reader : public CoreActor
{
  public:
    Reader(Machine &machine, Task *task, LazyCacheWorkload &cache,
           std::uint64_t seed)
        : CoreActor(machine, task), cache_(cache), rng_(seed)
    {
    }

  protected:
    Duration
    step() override
    {
        LazyCacheWorkload &c = cache_;
        Duration d = c.config_.readThink;

        std::uint64_t page;
        if (rng_.nextDouble() < c.config_.hotBias || c.hotPages_ == c.config_.cachePages)
            page = rng_.nextBounded(c.hotPages_);
        else
            page = c.hotPages_ +
                   rng_.nextBounded(c.config_.cachePages - c.hotPages_);

        // Optimistic read lock: note the generation, read, revalidate.
        const std::uint32_t gen = c.generation_[page];
        TouchResult t =
            kernel().touch(task(), c.pageAddr(page), false);
        d += t.latency;
        ++c.reads_;

        if (!c.filled_[page] || c.generation_[page] != gen) {
            // Revalidation failed — the page was discarded (the read
            // refaulted a zero frame, or will the next time its
            // stale translation drops). Refill and bump the
            // generation so in-flight optimistic readers notice.
            ++c.revalFails_;
            TouchResult w =
                kernel().touch(task(), c.pageAddr(page), true);
            d += w.latency;
            c.filled_[page] = 1;
            ++c.generation_[page];
            ++c.refills_;
        } else {
            ++c.hits_;
        }
        return d;
    }

    bool
    stepFootprint(EventFootprint &fp) const override
    {
        declareStepWrites(fp, core(), &task()->mm());
        return true;
    }

  private:
    LazyCacheWorkload &cache_;
    Rng rng_;
};

/** One writer thread: fill pages across the full set. */
class LazyCacheWorkload::Writer : public CoreActor
{
  public:
    Writer(Machine &machine, Task *task, LazyCacheWorkload &cache,
           std::uint64_t seed)
        : CoreActor(machine, task), cache_(cache), rng_(seed)
    {
    }

  protected:
    Duration
    step() override
    {
        LazyCacheWorkload &c = cache_;
        Duration d = c.config_.writeThink;

        const std::uint64_t page =
            rng_.nextBounded(c.config_.cachePages);
        TouchResult t =
            kernel().touch(task(), c.pageAddr(page), true);
        d += t.latency;
        c.filled_[page] = 1;
        ++c.generation_[page];
        ++c.writes_;
        return d;
    }

    bool
    stepFootprint(EventFootprint &fp) const override
    {
        declareStepWrites(fp, core(), &task()->mm());
        return true;
    }

  private:
    LazyCacheWorkload &cache_;
    Rng rng_;
};

/**
 * The memory-pressure thread: every pressureInterval it MADV_FREEs
 * a burst of cold filled pages back-to-back. Under LATR each
 * single-page free saves one ring state; a burst larger than
 * latrStatesPerCore overflows the ring mid-burst (states persist
 * for the 2 ms reclaim delay, far longer than the burst), forcing
 * the fallback-IPI path — the overflow regime the paper's
 * benchmarks never reach.
 */
class LazyCacheWorkload::Pressure : public CoreActor
{
  public:
    Pressure(Machine &machine, Task *task, LazyCacheWorkload &cache,
             std::uint64_t seed)
        : CoreActor(machine, task), cache_(cache), rng_(seed),
          harvesting_(machine.policy().kind() == PolicyKind::Abis)
    {
    }

  protected:
    Duration
    step() override
    {
        LazyCacheWorkload &c = cache_;
        const std::uint64_t cold = c.config_.cachePages - c.hotPages_;
        if (cold == 0 || c.config_.burstPages == 0)
            return c.config_.pressureInterval;

        // A burst plan is usable only when nothing that might touch
        // the sharer directory committed since stepCompute() read it
        // (SharerDirectory is a no-writer resource; see its enum doc
        // for why this check is precise).
        const bool planned =
            plan_.valid &&
            plan_.epoch == machine().queue().resourceEpoch(
                               SimResource::SharerDirectory);
        plan_.valid = false;

        ++c.bursts_;
        Duration d = 0;
        std::uint64_t discarded = 0;
        // Bounded scan: cold unfilled pages are skipped, so late in
        // a burst most probes miss; 4x attempts keeps bursts near
        // their nominal size without risking an unbounded loop.
        for (std::uint64_t n = 0;
             n < c.config_.burstPages * 4 &&
             discarded < c.config_.burstPages;
             ++n) {
            const std::uint64_t page =
                c.hotPages_ + rng_.nextBounded(cold);
            if (!c.filled_[page])
                continue;
            if (planned)
                offerPlanned(page);
            SyscallResult r = kernel().madviseFree(
                task(), c.pageAddr(page), kPageSize);
            d += r.latency;
            if (!r.ok)
                continue;
            c.filled_[page] = 0;
            ++c.generation_[page];
            ++discarded;
            ++c.discardedPages_;
        }
        return d + c.config_.pressureInterval;
    }

    bool
    stepFootprint(EventFootprint &fp) const override
    {
        declareStepWrites(fp, core(), &task()->mm());
        // MADV_FREE publishes LATR states (or takes the fallback
        // path); tick sweeps compute() against this resource, so the
        // burst must invalidate their plans.
        fp.writeGlobal(SimResource::LatrPublish);
        // When stepCompute() harvests sharer sets it reads the mm,
        // so an mm-writing event ahead of this one in a batch must
        // keep it out (that admission rule plus the SharerDirectory
        // epoch makes the plan validation in step() exact).
        if (harvesting_)
            fp.readSpace(&task()->mm());
        return true;
    }

    /**
     * Replicate the burst's page selection read-only — a cloned RNG
     * and a cleared-pages scratch stand in for rng_/filled_ — and
     * record each selected page's sharer set from the mm's access-bit
     * directory. step() then hands ABIS each mask right before the
     * matching MADV_FREE, hoisting the harvest walk off the serial
     * commit path. If the replay diverges from the real selection
     * (a failed madviseFree), the lookup by page simply misses and
     * ABIS harvests fresh — never a wrong mask.
     */
    void
    stepCompute() override
    {
        plan_.valid = false;
        LazyCacheWorkload &c = cache_;
        const std::uint64_t cold = c.config_.cachePages - c.hotPages_;
        if (!harvesting_ || cold == 0 || c.config_.burstPages == 0)
            return;

        plan_.masks.clear();
        cleared_.clear();
        Rng rng = rng_;
        const AddressSpace &mm = task()->mm();
        std::uint64_t discarded = 0;
        for (std::uint64_t n = 0;
             n < c.config_.burstPages * 4 &&
             discarded < c.config_.burstPages;
             ++n) {
            const std::uint64_t page =
                c.hotPages_ + rng.nextBounded(cold);
            if (!c.filled_[page])
                continue;
            if (std::find(cleared_.begin(), cleared_.end(), page) !=
                cleared_.end())
                continue;
            cleared_.push_back(page);
            const Vpn vpn = c.pageAddr(page) >> kPageShift;
            plan_.masks.emplace_back(page, mm.sharersOf(vpn));
            ++discarded;
        }
        plan_.epoch = machine().queue().resourceEpoch(
            SimResource::SharerDirectory);
        plan_.valid = true;
    }

    unsigned
    stepComputeWeight() const override
    {
        const LazyCacheWorkload &c = cache_;
        const bool plans = harvesting_ &&
                           c.config_.cachePages > c.hotPages_ &&
                           c.config_.burstPages > 0;
        return plans ? static_cast<unsigned>(std::min<std::uint64_t>(
                           c.config_.burstPages, 256))
                     : 0;
    }

  private:
    void
    offerPlanned(std::uint64_t page)
    {
        for (const auto &pm : plan_.masks) {
            if (pm.first != page)
                continue;
            const Vpn vpn = cache_.pageAddr(page) >> kPageShift;
            machine().policy().offerSharerHarvest(&task()->mm(), vpn,
                                                  vpn, pm.second);
            return;
        }
    }

    /** The compute()-built burst plan; scratch reused across bursts. */
    struct BurstPlan
    {
        bool valid = false;
        /** SharerDirectory epoch the masks were read under. */
        std::uint64_t epoch = 0;
        /** (page index, sharer mask) per planned MADV_FREE. */
        std::vector<std::pair<std::uint64_t, CpuMask>> masks;
    };

    LazyCacheWorkload &cache_;
    Rng rng_;
    /** Sharer harvests only pay off under ABIS; plan only there. */
    const bool harvesting_;
    BurstPlan plan_;
    /** stepCompute()'s stand-in for the filled_ bits it must not flip. */
    std::vector<std::uint64_t> cleared_;
};

LazyCacheWorkload::LazyCacheWorkload(Machine &machine,
                                     LazyCacheConfig config)
    : machine_(machine), config_(config)
{
    if (config_.cachePages == 0)
        fatal("lazycache needs at least one page");
    if (config_.readers == 0)
        fatal("lazycache needs at least one reader");
    const unsigned cores = machine.topo().totalCores();
    const unsigned pressure = config_.burstPages > 0 ? 1 : 0;
    // Fit readers + writers + the pressure thread on the topology.
    if (config_.readers + config_.writers + pressure > cores) {
        config_.readers = std::min(
            config_.readers, cores > pressure ? cores - pressure : 1);
        config_.writers =
            std::min(config_.writers,
                     cores - pressure - std::min(config_.readers,
                                                 cores - pressure));
    }
    config_.hotFraction = std::clamp(config_.hotFraction, 0.0, 1.0);
    hotPages_ = static_cast<std::uint64_t>(
        static_cast<double>(config_.cachePages) * config_.hotFraction);
    hotPages_ = std::clamp<std::uint64_t>(hotPages_, 1,
                                          config_.cachePages);
    generation_.assign(config_.cachePages, 0);
    filled_.assign(config_.cachePages, 0);
}

void
LazyCacheWorkload::start()
{
    if (started_)
        return;
    started_ = true;

    Kernel &kernel = machine_.kernel();
    Process *proc = kernel.createProcess("lazycache");

    CoreId next = 0;
    std::vector<Task *> tasks;
    const unsigned pressure = config_.burstPages > 0 ? 1 : 0;
    for (unsigned i = 0; i < config_.readers + config_.writers + pressure;
         ++i)
        tasks.push_back(kernel.spawnTask(proc, next++));

    // Map the cache region once and prefill every page from the
    // first task — lazyfree_cache warms its arena the same way —
    // so steady state starts from an all-filled directory.
    SyscallResult m =
        kernel.mmap(tasks[0], config_.cachePages * kPageSize,
                    kProtRead | kProtWrite);
    if (!m.ok)
        fatal("lazycache mmap failed");
    base_ = m.addr;
    for (std::uint64_t p = 0; p < config_.cachePages; ++p) {
        kernel.touch(tasks[0], pageAddr(p), true);
        generation_[p] = 1;
        filled_[p] = 1;
    }

    unsigned t = 0;
    for (unsigned r = 0; r < config_.readers; ++r, ++t) {
        auto actor = std::make_unique<Reader>(
            machine_, tasks[t], *this, config_.seed * 1000 + t);
        actor->start(machine_.now() + t * 3 * kUsec + 1);
        actors_.push_back(std::move(actor));
    }
    for (unsigned w = 0; w < config_.writers; ++w, ++t) {
        auto actor = std::make_unique<Writer>(
            machine_, tasks[t], *this, config_.seed * 1000 + t);
        actor->start(machine_.now() + t * 3 * kUsec + 1);
        actors_.push_back(std::move(actor));
    }
    if (pressure) {
        auto actor = std::make_unique<Pressure>(
            machine_, tasks[t], *this, config_.seed * 1000 + t);
        // First burst lands after the readers found their rhythm.
        actor->start(machine_.now() + config_.pressureInterval / 2 + 1);
        actors_.push_back(std::move(actor));
    }
}

std::uint64_t
LazyCacheWorkload::digest() const
{
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ULL;
        }
    };
    mix(reads_);
    mix(hits_);
    mix(revalFails_);
    mix(refills_);
    mix(writes_);
    mix(discardedPages_);
    mix(bursts_);
    for (std::uint64_t p = 0; p < config_.cachePages; ++p)
        mix((static_cast<std::uint64_t>(generation_[p]) << 1) |
            filled_[p]);
    for (const auto &actor : actors_)
        mix(actor->iterations());
    return h;
}

LazyCacheResult
LazyCacheWorkload::measure(Duration warmup, Duration measured)
{
    start();
    machine_.run(warmup);

    const std::uint64_t reads0 = reads_;
    const std::uint64_t hits0 = hits_;
    const std::uint64_t reval0 = revalFails_;
    const std::uint64_t refills0 = refills_;
    const std::uint64_t writes0 = writes_;
    const std::uint64_t discards0 = discardedPages_;
    const std::uint64_t bursts0 = bursts_;
    const std::uint64_t fb0 =
        machine_.stats().counterValue("latr.fallback_ipis");
    const std::uint64_t rp0 =
        machine_.stats().counterValue("latr.reclaimed_pages");

    machine_.run(measured);

    LazyCacheResult result;
    result.reads = reads_ - reads0;
    result.hits = hits_ - hits0;
    result.revalidationFails = revalFails_ - reval0;
    result.refills = refills_ - refills0;
    result.writes = writes_ - writes0;
    result.discardedPages = discardedPages_ - discards0;
    result.bursts = bursts_ - bursts0;
    result.fallbackIpis =
        machine_.stats().counterValue("latr.fallback_ipis") - fb0;
    result.reclaimedPages =
        machine_.stats().counterValue("latr.reclaimed_pages") - rp0;
    result.readsPerSec = ratePerSecond(result.reads, measured);
    result.eventsPerSec = ratePerSecond(
        result.reads + result.writes + result.discardedPages,
        measured);
    if (result.reads > 0)
        result.hitRatio = static_cast<double>(result.hits) /
                          static_cast<double>(result.reads);
    result.digest = digest();
    return result;
}

} // namespace latr
