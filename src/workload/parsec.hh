/**
 * @file
 * Profile-driven synthetic PARSEC workloads (paper figure 10 and
 * table 4). Each profile reproduces the memory-management behaviour
 * that matters for TLB coherence — the madvise()/munmap() rate (glibc
 * returns freed arenas with MADV_DONTNEED), the context-switch rate,
 * the TLB/LLC footprint — calibrated to the per-benchmark shootdown
 * rates the paper reports (dedup ~30k/s at 16 cores, canneal nearly
 * none but switch-heavy, most others low).
 */

#ifndef LATR_WORKLOAD_PARSEC_HH_
#define LATR_WORKLOAD_PARSEC_HH_

#include <string>
#include <vector>

#include "machine/machine.hh"
#include "sim/types.hh"

namespace latr
{

/** Synthetic profile of one PARSEC benchmark. */
struct ParsecProfile
{
    const char *name;
    /** Pure CPU per iteration. */
    Duration computePerIter;
    /** Pages touched per iteration (TLB pressure). */
    unsigned touchPages;
    /** Working-set pages the touches range over. */
    std::uint64_t workingSetPages;
    /** LLC lines accessed per iteration. */
    unsigned llcLines;
    /** LLC working-set lines those accesses range over. */
    std::uint64_t llcWorkingSetLines;
    /** madvise(DONTNEED) a scratch buffer every N iterations (0 = never). */
    unsigned madviseEvery;
    /** Pages per madvise. */
    unsigned madvisePages;
    /** Explicit context switch every N iterations (0 = never). */
    unsigned ctxSwitchEvery;
    /** Threads per core (canneal oversubscribes). */
    unsigned tasksPerCore;
    /** Iterations per core (fixed work; runtime is the metric). */
    std::uint64_t itersPerCore;
};

/** The 13 benchmarks of figure 10, in the paper's order. */
const std::vector<ParsecProfile> &parsecSuite();

/** Find a profile by name (fatal if absent). */
const ParsecProfile &parsecProfile(const std::string &name);

/** Outcome of one benchmark run. */
struct ParsecResult
{
    std::string name;
    /** Completion time of the fixed work. */
    Duration runtimeNs = 0;
    double shootdownsPerSec = 0.0;
    double llcAppMissRatio = 0.0;
};

/**
 * Run @p profile on @p machine with @p cores worker cores.
 * The machine must be fresh.
 */
ParsecResult runParsec(Machine &machine, const ParsecProfile &profile,
                       unsigned cores);

} // namespace latr

#endif // LATR_WORKLOAD_PARSEC_HH_
