/**
 * @file
 * The low-shootdown overhead study of the paper's figure 12: does
 * LATR slow anything down when there is (almost) nothing to make
 * lazy? Cases: nginx on one core (sendfile, no per-request mmap),
 * Apache on one core, and the five quietest PARSEC benchmarks on 16
 * cores. The paper's answer: at most 1.7% overhead.
 */

#ifndef LATR_WORKLOAD_LOWSHOOTDOWN_HH_
#define LATR_WORKLOAD_LOWSHOOTDOWN_HH_

#include <string>
#include <vector>

#include "tlbcoh/policy.hh"
#include "topo/machine_config.hh"

namespace latr
{

/** One row of figure 12. */
struct LowShootdownCase
{
    enum class Kind
    {
        Nginx,   ///< single-core sendfile server
        Apache,  ///< single-core mmap-per-request server
        Parsec,  ///< a quiet PARSEC profile on all cores
    };

    const char *name;
    Kind kind;
    unsigned cores;
    /** PARSEC profile name (Kind::Parsec only). */
    const char *parsecName;
};

/** The seven cases of figure 12. */
const std::vector<LowShootdownCase> &lowShootdownCases();

/** Outcome of one case under one policy. */
struct LowShootdownResult
{
    std::string name;
    /** Higher-is-better performance metric (req/s or 1/runtime). */
    double performance = 0.0;
    double shootdownsPerSec = 0.0;
};

/**
 * Run one case on a fresh machine built from @p base under
 * @p policy.
 */
LowShootdownResult runLowShootdownCase(const MachineConfig &base,
                                       PolicyKind policy,
                                       const LowShootdownCase &c);

} // namespace latr

#endif // LATR_WORKLOAD_LOWSHOOTDOWN_HH_
