/**
 * @file
 * The Apache-like webserver workload of the paper's figures 1 and 9:
 * mpm_event-style worker threads (a few processes, several threads
 * each, one thread per core) serve a 10 KB static page per request
 * by mmap()ing the file, touching it, doing the request's CPU work,
 * and munmap()ing it — the pattern that makes Apache shootdown-bound
 * on stock Linux. Throughput (requests/s) and shootdowns/s are
 * measured after a warmup.
 */

#ifndef LATR_WORKLOAD_WEBSERVER_HH_
#define LATR_WORKLOAD_WEBSERVER_HH_

#include <memory>
#include <vector>

#include "sim/rng.hh"
#include "workload/workload.hh"

namespace latr
{

/** Webserver parameters. */
struct WebServerConfig
{
    /** Serving cores (workers), one thread per core from core 0. */
    unsigned workers = 12;
    /**
     * mpm_event processes the threads are spread across. Apache
     * serves the bulk of a static-file load from very few event
     * processes, so the default models one shared mm — the
     * configuration whose mmap_sem and shootdown behaviour the
     * paper's figure 9 exhibits.
     */
    unsigned processes = 1;
    /** Served file size (10 KB static page in the paper). */
    std::uint64_t fileBytes = 10 * 1024;
    /** Request CPU time outside memory management. */
    Duration serviceCpu = 58 * kUsec;
    /** LLC lines a request touches (app footprint for table 4). */
    unsigned llcLinesPerRequest = 96;
    /** Per-worker LLC working-set lines. */
    std::uint64_t llcWorkingSetLines = 24 * 1024;
    /**
     * Streaming lines per request (socket buffers, parsed headers)
     * that are inherently cold — the floor of Apache's LLC miss
     * ratio.
     */
    unsigned llcColdLinesPerRequest = 4;
    /**
     * Serve via mmap/munmap (Apache). False models nginx-style
     * sendfile serving with no per-request mapping (figure 12).
     */
    bool mmapPerRequest = true;
    std::uint64_t seed = 1;
};

/** Measurement outcome. */
struct WebServerResult
{
    double requestsPerSec = 0.0;
    double shootdownsPerSec = 0.0;
    std::uint64_t requests = 0;
    double llcAppMissRatio = 0.0;
};

/** The workload object; owns the worker actors. */
class WebServerWorkload
{
  public:
    WebServerWorkload(Machine &machine, WebServerConfig config);

    /** Spawn processes/threads and start the request loops. */
    void start();

    /**
     * Run @p warmup, reset counters, run @p measured, and report.
     */
    WebServerResult measure(Duration warmup, Duration measured);

    /** Total requests served so far. */
    std::uint64_t requestsServed() const;

  private:
    class Worker;

    Machine &machine_;
    WebServerConfig config_;
    std::vector<std::unique_ptr<CoreActor>> workers_;
    bool started_ = false;
};

} // namespace latr

#endif // LATR_WORKLOAD_WEBSERVER_HH_
