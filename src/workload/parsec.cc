#include "workload/parsec.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workload/workload.hh"

namespace latr
{

const std::vector<ParsecProfile> &
parsecSuite()
{
    // Field order: name, computePerIter, touchPages, workingSetPages,
    // llcLines, llcWorkingSetLines, madviseEvery, madvisePages,
    // ctxSwitchEvery, tasksPerCore, itersPerCore.
    //
    // madvise cadences are set so the 16-core shootdown rates land
    // near figure 10's: dedup (and its pipelined variant netdedup)
    // free chunk buffers constantly; vips and bodytrack moderately;
    // the rest rarely. canneal barely frees but switches constantly
    // (its 1.7% LATR regression comes from sweep work at switches).
    static const std::vector<ParsecProfile> suite = {
        {"blackscholes", 55 * kUsec, 6, 2048, 48, 16384, 0, 0, 0, 1,
         1500},
        {"bodytrack", 45 * kUsec, 10, 4096, 64, 32768, 64, 8, 0, 1,
         1800},
        {"canneal", 11 * kUsec, 10, 32768, 64, 262144, 0, 0, 1, 2,
         7000},
        {"dedup", 40 * kUsec, 12, 8192, 72, 65536, 5, 16, 0, 1, 2000},
        {"facesim", 60 * kUsec, 8, 8192, 80, 131072, 256, 6, 0, 1,
         1400},
        {"ferret", 50 * kUsec, 9, 6144, 72, 98304, 128, 6, 0, 1, 1600},
        {"fluidanimate", 52 * kUsec, 8, 6144, 56, 49152, 512, 4, 0, 1,
         1600},
        {"freqmine", 58 * kUsec, 7, 4096, 56, 49152, 384, 4, 0, 1,
         1400},
        {"netdedup", 42 * kUsec, 12, 8192, 72, 65536, 6, 14, 0, 1,
         1900},
        {"raytrace", 56 * kUsec, 8, 8192, 64, 65536, 512, 4, 0, 1,
         1500},
        {"streamcluster", 38 * kUsec, 10, 16384, 112, 393216, 0, 0, 0,
         1, 2200},
        {"swaptions", 48 * kUsec, 6, 2048, 64, 131072, 0, 0, 0, 1,
         1700},
        {"vips", 40 * kUsec, 10, 6144, 64, 49152, 24, 10, 0, 1, 2000},
    };
    return suite;
}

const ParsecProfile &
parsecProfile(const std::string &name)
{
    for (const ParsecProfile &p : parsecSuite())
        if (name == p.name)
            return p;
    fatal("unknown PARSEC profile '%s'", name.c_str());
}

namespace
{

/** One PARSEC worker thread. */
class ParsecWorker : public CoreActor
{
  public:
    ParsecWorker(Machine &machine, Task *task,
                 const ParsecProfile &profile, std::uint64_t iters,
                 std::uint64_t seed)
        : CoreActor(machine, task), profile_(profile), left_(iters),
          rng_(seed),
          llcBase_(0x4000'0000ULL * (task->core() + 1))
    {
    }

  protected:
    Duration
    step() override
    {
        if (left_ == 0)
            return kActorDone;
        --left_;

        Duration d = profile_.computePerIter;
        Kernel &k = kernel();

        // Lazily set up the worker's working set and scratch buffer.
        if (ws_ == kAddrInvalid) {
            SyscallResult m = k.mmap(
                task(), profile_.workingSetPages * kPageSize,
                kProtRead | kProtWrite);
            if (!m.ok)
                fatal("parsec working-set mmap failed");
            ws_ = m.addr;
            d += m.latency;
        }
        if (profile_.madviseEvery && scratch_ == kAddrInvalid) {
            SyscallResult m =
                k.mmap(task(), profile_.madvisePages * kPageSize,
                       kProtRead | kProtWrite);
            if (!m.ok)
                fatal("parsec scratch mmap failed");
            scratch_ = m.addr;
            d += m.latency;
        }

        // Touch a random slice of the working set.
        for (unsigned t = 0; t < profile_.touchPages; ++t) {
            const std::uint64_t page =
                rng_.nextBounded(profile_.workingSetPages);
            TouchResult r =
                k.touch(task(), ws_ + page * kPageSize,
                        (t & 1) != 0);
            d += r.latency;
        }

        // LLC traffic.
        LlcCache &llc =
            machine().llcOf(machine().topo().nodeOf(core()));
        const CostModel &cost = machine().config().cost;
        for (unsigned i = 0; i < profile_.llcLines; ++i) {
            const std::uint64_t line =
                llcBase_ + rng_.nextBounded(profile_.llcWorkingSetLines);
            if (!llc.access(line, CacheAccessOrigin::App))
                d += cost.llcMissPenalty;
        }

        // Free behaviour (glibc arena trimming, pipeline buffers).
        if (profile_.madviseEvery &&
            iterations() % profile_.madviseEvery == 0) {
            // Fault the scratch in, then give it back.
            for (unsigned p = 0; p < profile_.madvisePages; ++p) {
                TouchResult r = k.touch(
                    task(), scratch_ + p * kPageSize, true);
                d += r.latency;
            }
            SyscallResult a =
                k.madvise(task(), scratch_,
                          profile_.madvisePages * kPageSize);
            d += a.latency;
        }

        // Explicit context switches (canneal).
        if (profile_.ctxSwitchEvery &&
            iterations() % profile_.ctxSwitchEvery == 0) {
            d += machine().scheduler().contextSwitch(core());
        }
        return d;
    }

  private:
    const ParsecProfile &profile_;
    std::uint64_t left_;
    Rng rng_;
    std::uint64_t llcBase_;
    Addr ws_ = kAddrInvalid;
    Addr scratch_ = kAddrInvalid;
};

} // namespace

ParsecResult
runParsec(Machine &machine, const ParsecProfile &profile,
          unsigned cores)
{
    cores = std::min(cores, machine.topo().totalCores());
    Kernel &kernel = machine.kernel();
    Process *process = kernel.createProcess(profile.name);

    std::vector<std::unique_ptr<CoreActor>> actors;
    for (CoreId c = 0; c < cores; ++c) {
        Task *task = kernel.spawnTask(process, c);
        // Extra same-process threads make context switches real.
        for (unsigned extra = 1; extra < profile.tasksPerCore; ++extra)
            kernel.spawnTask(process, c);
        auto worker = std::make_unique<ParsecWorker>(
            machine, task, profile, profile.itersPerCore,
            0x9a05ec + c);
        worker->start(machine.now() + c * kUsec + 1);
        actors.push_back(std::move(worker));
    }

    const Tick t0 = machine.now();
    const Tick finish =
        runToCompletion(machine, actors, t0 + 60 * kSec);

    ParsecResult result;
    result.name = profile.name;
    result.runtimeNs = finish - t0;
    result.shootdownsPerSec = ratePerSecond(
        machine.stats().counterValue("coh.shootdowns"),
        result.runtimeNs);

    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    for (NodeId n = 0; n < machine.config().sockets; ++n) {
        hits += machine.llcOf(n).hits(CacheAccessOrigin::App);
        misses += machine.llcOf(n).misses(CacheAccessOrigin::App);
    }
    if (hits + misses > 0)
        result.llcAppMissRatio = static_cast<double>(misses) /
                                 static_cast<double>(hits + misses);
    return result;
}

} // namespace latr
