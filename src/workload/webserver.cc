#include "workload/webserver.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace latr
{

/** One serving thread: a closed loop of requests. */
class WebServerWorkload::Worker : public CoreActor
{
  public:
    Worker(Machine &machine, Task *task, const WebServerConfig &config,
           std::uint64_t seed)
        : CoreActor(machine, task), config_(config), rng_(seed),
          llcBase_(0x100'0000ULL * (task->core() + 1))
    {
    }

    std::uint64_t requests() const { return requests_; }

  protected:
    Duration
    step() override
    {
        Duration d = 0;

        if (config_.mmapPerRequest) {
            // Apache mpm_event: mmap the file, serve it, munmap it.
            SyscallResult m = kernel().mmap(
                task(), config_.fileBytes, kProtRead | kProtWrite,
                true);
            if (!m.ok)
                fatal("webserver mmap failed");
            d += m.latency;
            const std::uint64_t pages =
                pagesSpanned(m.addr, config_.fileBytes);
            for (std::uint64_t p = 0; p < pages; ++p) {
                TouchResult t = kernel().touch(
                    task(), m.addr + p * kPageSize, false);
                d += t.latency;
            }
            d += serveBody();
            SyscallResult u =
                kernel().munmap(task(), m.addr, config_.fileBytes);
            d += u.latency;
        } else {
            // nginx-style sendfile: no per-request mapping.
            d += serveBody();
        }

        ++requests_;
        return d;
    }

    bool
    stepFootprint(EventFootprint &fp) const override
    {
        // One request mutates this core's TLB/stolen account, the
        // process's shared mm (mmap/touch/munmap or just LLC state),
        // and — via minor faults and munmap frees — the frame
        // allocator. Apache-style per-request munmaps also publish
        // LATR states (or take the fallback path), which tick sweep
        // plans speculate over. No compute() phase, so no reads.
        fp.writeCore(core());
        fp.writeSpace(&task()->mm());
        fp.writeGlobal(SimResource::FrameAllocator);
        if (config_.mmapPerRequest)
            fp.writeGlobal(SimResource::LatrPublish);
        return true;
    }

  private:
    /** The request's CPU work plus its cache footprint. */
    Duration
    serveBody()
    {
        Duration d = config_.serviceCpu;
        // Touch the worker's share of the application working set;
        // misses surface in table 4's app miss ratio.
        LlcCache &llc = machine().llcOf(
            machine().topo().nodeOf(core()));
        const CostModel &cost = machine().config().cost;
        for (unsigned i = 0; i < config_.llcLinesPerRequest; ++i) {
            const std::uint64_t line =
                llcBase_ +
                rng_.nextBounded(config_.llcWorkingSetLines);
            if (!llc.access(line, CacheAccessOrigin::App))
                d += cost.llcMissPenalty;
        }
        // Streamed request data never hits.
        for (unsigned i = 0; i < config_.llcColdLinesPerRequest; ++i) {
            if (!llc.access(llcBase_ + 0x4000'0000ULL + coldCursor_++,
                            CacheAccessOrigin::App))
                d += cost.llcMissPenalty;
        }
        // Mild service-time jitter, as request parsing varies.
        d += rng_.nextBounded(config_.serviceCpu / 8 + 1);
        return d;
    }

    const WebServerConfig &config_;
    Rng rng_;
    std::uint64_t llcBase_;
    std::uint64_t coldCursor_ = 0;
    std::uint64_t requests_ = 0;
};

WebServerWorkload::WebServerWorkload(Machine &machine,
                                     WebServerConfig config)
    : machine_(machine), config_(config)
{
    if (config_.workers == 0)
        fatal("webserver needs at least one worker");
    if (config_.processes == 0)
        config_.processes = 1;
    config_.workers =
        std::min(config_.workers, machine.topo().totalCores());
    config_.processes = std::min(config_.processes, config_.workers);
}

void
WebServerWorkload::start()
{
    if (started_)
        return;
    started_ = true;

    Kernel &kernel = machine_.kernel();
    std::vector<Process *> procs;
    for (unsigned p = 0; p < config_.processes; ++p)
        procs.push_back(
            kernel.createProcess("apache" + std::to_string(p)));

    for (unsigned w = 0; w < config_.workers; ++w) {
        Process *proc = procs[w % config_.processes];
        Task *task = kernel.spawnTask(proc, static_cast<CoreId>(w));
        auto worker = std::make_unique<Worker>(
            machine_, task, config_, config_.seed * 1000 + w);
        // Stagger the start so requests do not phase-align.
        worker->start(machine_.now() + w * 3 * kUsec + 1);
        workers_.push_back(std::move(worker));
    }
}

std::uint64_t
WebServerWorkload::requestsServed() const
{
    std::uint64_t total = 0;
    for (const auto &w : workers_)
        total += static_cast<const Worker &>(*w).requests();
    return total;
}

WebServerResult
WebServerWorkload::measure(Duration warmup, Duration measured)
{
    start();
    machine_.run(warmup);

    const std::uint64_t req0 = requestsServed();
    const std::uint64_t sd0 =
        machine_.stats().counterValue("coh.shootdowns");
    for (NodeId n = 0; n < machine_.config().sockets; ++n)
        machine_.llcOf(n).resetStats();

    machine_.run(measured);

    WebServerResult result;
    result.requests = requestsServed() - req0;
    result.requestsPerSec = ratePerSecond(result.requests, measured);
    result.shootdownsPerSec = ratePerSecond(
        machine_.stats().counterValue("coh.shootdowns") - sd0,
        measured);

    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    for (NodeId n = 0; n < machine_.config().sockets; ++n) {
        hits += machine_.llcOf(n).hits(CacheAccessOrigin::App);
        misses += machine_.llcOf(n).misses(CacheAccessOrigin::App);
    }
    if (hits + misses > 0)
        result.llcAppMissRatio = static_cast<double>(misses) /
                                 static_cast<double>(hits + misses);
    return result;
}

} // namespace latr
