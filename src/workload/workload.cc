#include "workload/workload.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace latr
{

CoreActor::CoreActor(Machine &machine, Task *task)
    : machine_(machine), task_(task), event_(this)
{
}

CoreActor::~CoreActor()
{
    stop();
}

void
CoreActor::start(Tick at)
{
    if (at < machine_.now())
        at = machine_.now();
    machine_.queue().reschedule(&event_, at);
}

void
CoreActor::stop()
{
    if (event_.scheduled())
        machine_.queue().deschedule(&event_);
}

void
CoreActor::doStep()
{
    Duration d = step();
    if (d == kActorDone) {
        done_ = true;
        finishedAt_ = machine_.now();
        return;
    }
    ++iterations_;
    // Asynchronous work that hit this core since the last step
    // (interrupt handlers, sweeps, tick work) stretches this step.
    d += machine_.scheduler().takeStolen(core());
    if (d == 0)
        d = 1;
    machine_.queue().schedule(&event_, machine_.now() + d);
}

Tick
runToCompletion(Machine &machine,
                const std::vector<std::unique_ptr<CoreActor>> &actors,
                Tick limit)
{
    const Duration slice = 1 * kMsec;
    for (;;) {
        bool all_done = true;
        for (const auto &actor : actors)
            if (!actor->done())
                all_done = false;
        if (all_done)
            break;
        if (machine.now() >= limit) {
            warn("runToCompletion hit the %llu ns limit",
                 static_cast<unsigned long long>(limit));
            break;
        }
        machine.run(std::min<Duration>(slice, limit - machine.now()));
    }
    Tick finish = 0;
    for (const auto &actor : actors)
        finish = std::max(finish, actor->finishedAt());
    return finish;
}

} // namespace latr
