/**
 * @file
 * The NUMA-balancing benchmarks of the paper's figure 11:
 * fluidanimate and ocean_cp (SPLASH-2x), Graph500 (BFS), PBZIP2
 * (parallel compression), and Metis (single-machine map-reduce).
 * Each is modeled as a fixed amount of per-core work over a shared
 * array whose pages were first-touched on node 0, so workers on
 * other sockets access remotely until AutoNUMA migrates the pages —
 * the workload that makes the sampling shootdown (which LATR
 * removes) visible in end-to-end runtime.
 */

#ifndef LATR_WORKLOAD_NUMABENCH_HH_
#define LATR_WORKLOAD_NUMABENCH_HH_

#include <string>
#include <vector>

#include "machine/machine.hh"
#include "sim/types.hh"

namespace latr
{

/** Profile of one NUMA-balancing benchmark. */
struct NumaBenchProfile
{
    const char *name;
    /** Shared array size in pages (first-touched on node 0). */
    std::uint64_t arrayPages;
    /** Pure CPU per iteration. */
    Duration computePerIter;
    /** Pages of the worker's partition touched per iteration. */
    unsigned touchPages;
    /** Iterations per core. */
    std::uint64_t itersPerCore;
    /** AutoNUMA scan period for this run. */
    Duration scanInterval;
    /** PTEs sampled per scan. */
    unsigned pagesPerScan;
};

/** The five benchmarks of figure 11. */
const std::vector<NumaBenchProfile> &numaBenchSuite();

/** Outcome of one run. */
struct NumaBenchResult
{
    std::string name;
    Duration runtimeNs = 0;
    double migrationsPerSec = 0.0;
    std::uint64_t migrations = 0;
    std::uint64_t samples = 0;
};

/**
 * Run @p profile on @p machine using @p cores workers with AutoNUMA
 * enabled. The machine must be fresh.
 */
NumaBenchResult runNumaBench(Machine &machine,
                             const NumaBenchProfile &profile,
                             unsigned cores);

} // namespace latr

#endif // LATR_WORKLOAD_NUMABENCH_HH_
