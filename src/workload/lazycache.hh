/**
 * @file
 * The MADV_FREE lazy-reclaim page-cache workload (modeled on
 * olegbbtr/lazyfree_cache): a 4 KB-page cache over discardable
 * memory. Writer threads fill pages, reader threads take optimistic
 * read locks — read the payload, then revalidate the page's
 * generation and discard flag, refilling on a miss — and a pressure
 * thread periodically MADV_FREEs bursts of cold pages whose frames
 * are later refaulted and reused. Each burst is larger than LATR's
 * per-core state ring, so this is the workload that drives ring
 * overflow → IPI fallback and the free-then-reuse reclaim window at
 * sustained rates.
 */

#ifndef LATR_WORKLOAD_LAZYCACHE_HH_
#define LATR_WORKLOAD_LAZYCACHE_HH_

#include <memory>
#include <vector>

#include "sim/rng.hh"
#include "workload/workload.hh"

namespace latr
{

/** Lazycache parameters. */
struct LazyCacheConfig
{
    /** Cached pages (4 KB each) in the one shared region. */
    std::uint64_t cachePages = 4096;
    /**
     * Fraction of the cache that is the hot core set. Hot pages are
     * never discarded by pressure, so reads biased there mostly
     * revalidate clean — the lazyfree_cache hit path.
     */
    double hotFraction = 0.125;
    /** Probability a read targets the hot set (else the full set). */
    double hotBias = 0.9;
    /** Reader threads, one per core from core 0. */
    unsigned readers = 10;
    /** Writer threads, on the cores after the readers. */
    unsigned writers = 2;
    /**
     * Pages MADV_FREEd per pressure burst, issued back-to-back from
     * one core. Anything above latrStatesPerCore (64) overflows the
     * ring mid-burst and forces fallback IPIs. 0 disables pressure
     * entirely (no pressure actor is spawned).
     */
    std::uint64_t burstPages = 160;
    /** Time between pressure bursts. */
    Duration pressureInterval = 2 * kMsec;
    /** Reader think time per optimistic read. */
    Duration readThink = 1 * kUsec;
    /** Writer think time per page fill. */
    Duration writeThink = 3 * kUsec;
    std::uint64_t seed = 1;
};

/** Measurement outcome. */
struct LazyCacheResult
{
    /** Reads + writes + discarded pages per simulated second. */
    double eventsPerSec = 0.0;
    double readsPerSec = 0.0;
    /** Optimistic reads that revalidated clean / all reads. */
    double hitRatio = 0.0;
    std::uint64_t reads = 0;
    std::uint64_t hits = 0;
    std::uint64_t revalidationFails = 0;
    std::uint64_t refills = 0;
    std::uint64_t writes = 0;
    std::uint64_t discardedPages = 0;
    std::uint64_t bursts = 0;
    /** Delta of latr.fallback_ipis over the measured window. */
    std::uint64_t fallbackIpis = 0;
    /** Delta of latr.reclaimed_pages over the measured window. */
    std::uint64_t reclaimedPages = 0;
    /** FNV-1a over counters + per-page cache state (see digest()). */
    std::uint64_t digest = 0;
};

/** The workload object; owns the reader/writer/pressure actors. */
class LazyCacheWorkload
{
  public:
    LazyCacheWorkload(Machine &machine, LazyCacheConfig config);

    /** Spawn tasks, map the region, prefill every page. */
    void start();

    /** Run @p warmup, snapshot, run @p measured, and report. */
    LazyCacheResult measure(Duration warmup, Duration measured);

    /**
     * FNV-1a64 over the workload counters, every page's generation
     * and filled flag, and per-actor iteration counts. Any
     * scheduling divergence between engine configurations changes
     * interleaving-visible state, so equal digests across
     * --sim-threads values certify the parallel engine preserved
     * the model exactly.
     */
    std::uint64_t digest() const;

    std::uint64_t reads() const { return reads_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t revalidationFails() const { return revalFails_; }
    std::uint64_t refills() const { return refills_; }
    std::uint64_t writes() const { return writes_; }
    std::uint64_t discardedPages() const { return discardedPages_; }
    std::uint64_t bursts() const { return bursts_; }

  private:
    class Reader;
    class Writer;
    class Pressure;

    Addr pageAddr(std::uint64_t page) const
    {
        return base_ + page * kPageSize;
    }

    Machine &machine_;
    LazyCacheConfig config_;
    std::vector<std::unique_ptr<CoreActor>> actors_;
    bool started_ = false;

    Addr base_ = kAddrInvalid;
    std::uint64_t hotPages_ = 0;

    /**
     * Cache-directory state, the sim-level stand-in for
     * lazyfree_cache's per-page generation + last-byte lock check:
     * a page's generation bumps on every fill/refill/discard, and
     * filled_ is cleared the instant MADV_FREE succeeds (the
     * conservative reading of MADV_FREE: contents may be gone as
     * soon as the kernel accepts the hint).
     */
    std::vector<std::uint32_t> generation_;
    std::vector<std::uint8_t> filled_;

    std::uint64_t reads_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t revalFails_ = 0;
    std::uint64_t refills_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t discardedPages_ = 0;
    std::uint64_t bursts_ = 0;
};

} // namespace latr

#endif // LATR_WORKLOAD_LAZYCACHE_HH_
