#include "workload/microbench.hh"

#include <algorithm>
#include <vector>

#include "sim/logging.hh"
#include "sim/stats.hh"
#include "tlbcoh/latr_policy.hh"

namespace latr
{

MunmapMicrobenchResult
runMunmapMicrobench(Machine &machine,
                    const MunmapMicrobenchConfig &config)
{
    Kernel &kernel = machine.kernel();
    const unsigned cores =
        std::min(config.sharingCores, machine.topo().totalCores());
    if (cores == 0)
        fatal("microbenchmark needs at least one core");

    Process *process = kernel.createProcess("ubench");
    std::vector<Task *> tasks;
    tasks.reserve(cores);
    for (CoreId c = 0; c < cores; ++c)
        tasks.push_back(kernel.spawnTask(process, c));

    auto *latr_policy = dynamic_cast<LatrPolicy *>(&machine.policy());

    Distribution munmap_lat;
    Distribution shoot_lat;
    MunmapMicrobenchResult result;

    // Let ticks settle before measuring.
    machine.run(2 * machine.config().cost.tickInterval);

    const std::uint64_t len = config.pages * kPageSize;
    const unsigned total =
        config.iterations + config.warmupIterations;

    for (unsigned iter = 0; iter < total; ++iter) {
        // Map and fault the pages on the initiator.
        SyscallResult m = kernel.mmap(tasks[0], len,
                                      kProtRead | kProtWrite);
        if (!m.ok)
            fatal("microbenchmark mmap failed (address space?)");
        Duration setup = m.latency;

        Duration slowest_sharer = 0;
        for (unsigned c = 0; c < cores; ++c) {
            Duration sharer = 0;
            for (std::uint64_t p = 0; p < config.pages; ++p) {
                TouchResult t = kernel.touch(
                    tasks[c], m.addr + p * kPageSize, true);
                sharer += t.latency;
            }
            slowest_sharer = std::max(slowest_sharer, sharer);
        }
        setup += slowest_sharer;
        machine.run(setup);

        // The measured munmap.
        SyscallResult u = kernel.munmap(tasks[0], m.addr, len);
        if (!u.ok)
            fatal("microbenchmark munmap failed");
        if (iter >= config.warmupIterations) {
            munmap_lat.sample(static_cast<double>(u.latency));
            shoot_lat.sample(static_cast<double>(u.shootdown));
        }
        if (latr_policy) {
            result.lazyBytesPeak = std::max(result.lazyBytesPeak,
                                            latr_policy->lazyBytes());
        }
        machine.run(u.latency + config.interIterationGap);
    }

    // Let lazy reclamation finish.
    machine.run(6 * kMsec);

    result.munmapMeanNs = munmap_lat.mean();
    result.shootdownMeanNs = shoot_lat.mean();
    result.munmapP99Ns = munmap_lat.percentile(0.99);
    result.latrFallbacks =
        machine.stats().counterValue("latr.fallback_ipis");
    return result;
}

} // namespace latr
