/**
 * @file
 * The workload framework: a CoreActor is a self-rescheduling loop
 * pinned to one task/core — each step() performs one unit of
 * application work through the kernel's syscall and memory paths,
 * returns the simulated time it consumed, and the actor reschedules
 * itself after that duration *plus* whatever time asynchronous
 * activity (IPI handlers, LATR sweeps) stole from the core in the
 * meantime. That is how coherence overhead becomes application
 * slowdown in every benchmark.
 */

#ifndef LATR_WORKLOAD_WORKLOAD_HH_
#define LATR_WORKLOAD_WORKLOAD_HH_

#include <memory>
#include <vector>

#include "machine/machine.hh"
#include "os/task.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace latr
{

/** A self-rescheduling per-core workload loop. */
class CoreActor
{
  public:
    /** Sentinel step() return meaning "this actor is finished". */
    static constexpr Duration kActorDone = kTickNever;

    /**
     * @param machine the machine the actor runs on.
     * @param task the (already scheduled) task it embodies.
     */
    CoreActor(Machine &machine, Task *task);

    virtual ~CoreActor();

    CoreActor(const CoreActor &) = delete;
    CoreActor &operator=(const CoreActor &) = delete;

    /** Schedule the first step at @p at. */
    void start(Tick at);

    /** Cancel any pending step. */
    void stop();

    Task *task() const { return task_; }
    std::uint64_t iterations() const { return iterations_; }
    bool done() const { return done_; }

    /** Tick the final step completed (valid when done()). */
    Tick finishedAt() const { return finishedAt_; }

  protected:
    /**
     * Perform one unit of work; return its simulated duration, or
     * kActorDone to finish the actor.
     */
    virtual Duration step() = 0;

    /**
     * Declare the conflict footprint of one step() into @p fp and
     * return true, or return false (the default) to leave the step
     * undeclared — a barrier under the parallel batched engine.
     * The footprint must cover everything step() mutates that
     * another event's compute() phase might read (commit phases
     * always replay in (tick, seq) order, so write/write overlap
     * between declared events is fine).
     */
    virtual bool stepFootprint(EventFootprint &fp) const
    {
        (void)fp;
        return false;
    }

    /**
     * Optional read-only speculation for the next step(), run in the
     * step event's compute() phase — possibly on a worker thread,
     * concurrently with other events' computes. It may read only
     * state stepFootprint() declares read, must leave every member
     * the step mutates (including RNGs) untouched, and stores its
     * result in actor-local plan scratch that step() validates
     * against a resource epoch and may discard. The sequential
     * engine never calls it.
     */
    virtual void stepCompute() {}

    /** Rough cost of stepCompute() (0 = trivial, run inline). */
    virtual unsigned stepComputeWeight() const { return 0; }

    Machine &machine() { return machine_; }
    Kernel &kernel() { return machine_.kernel(); }
    CoreId core() const { return task_->core(); }

  private:
    class StepEvent : public Event
    {
      public:
        explicit StepEvent(CoreActor *actor) : actor_(actor) {}
        void process() override { actor_->doStep(); }
        bool footprint(EventFootprint &fp) const override
        {
            return actor_->stepFootprint(fp);
        }
        void compute() override { actor_->stepCompute(); }
        unsigned computeWeight() const override
        {
            return actor_->stepComputeWeight();
        }
        const char *name() const override { return "actor-step"; }

      private:
        CoreActor *actor_;
    };

    void doStep();

    Machine &machine_;
    Task *task_;
    StepEvent event_;
    std::uint64_t iterations_ = 0;
    bool done_ = false;
    Tick finishedAt_ = 0;
};

/**
 * Run @p machine until every actor reports done (or @p limit).
 * @return the tick the last actor finished (the workload's
 *         completion time).
 */
Tick runToCompletion(Machine &machine,
                     const std::vector<std::unique_ptr<CoreActor>> &actors,
                     Tick limit);

} // namespace latr

#endif // LATR_WORKLOAD_WORKLOAD_HH_
