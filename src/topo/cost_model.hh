/**
 * @file
 * Every latency constant in the simulated machine, in nanoseconds.
 * The values are calibrated against the measurements the paper
 * reports rather than against any particular silicon:
 *
 *  - a single IPI costs 2.7 us on the 2-socket machine and 6.6 us on
 *    the 8-socket machine (paper section 1);
 *  - a full 16-core shootdown costs ~6 us, a 120-core shootdown
 *    ~80 us (section 1, figure 7);
 *  - saving a LATR state costs 132.3 ns, a state sweep 158.0 ns, and
 *    a single Linux shootdown 1594.2 ns (table 5);
 *  - Linux munmap() of one page on 16 cores costs ~8 us of which
 *    71.6% is shootdown; LATR brings it to 2.4 us (figure 6).
 */

#ifndef LATR_TOPO_COST_MODEL_HH_
#define LATR_TOPO_COST_MODEL_HH_

#include "sim/types.hh"

namespace latr
{

/**
 * Latency constants of a simulated machine. All fields are in
 * nanoseconds of simulated time. Two presets exist (see
 * MachineConfig): the interconnect-related fields differ between the
 * 2-socket E5 and the 8-socket E7, everything else is shared.
 */
struct CostModel
{
    /// @name System calls and VM bookkeeping
    /// @{
    /** Syscall entry/exit. */
    Duration syscallFixed = 150;
    /** VMA lookup/split/merge per munmap/mmap/madvise call. */
    Duration vmaFixed = 1750;
    /** Extra VMA/rmap bookkeeping per page in the operation. */
    Duration vmaPerPage = 60;
    /**
     * rmap/refcount cache-line bouncing per core the mm is resident
     * on. Negligible on the 2-socket E5; on the 8-socket E7 this is
     * what makes even the non-shootdown part of munmap() grow with
     * core count (figure 7's Linux curve reaches ~120 us of which
     * only ~82 us is shootdown — and LATR's curve reaches ~40 us
     * despite paying no shootdown at all).
     */
    Duration vmaPerResidentCore = 0;
    /** Clearing one PTE (incl. walking to it, dirtying the PT line). */
    Duration pteClearPerPage = 170;
    /** Installing one PTE. */
    Duration pteMapPerPage = 240;
    /** mmap() fixed cost beyond the syscall. */
    Duration mmapFixed = 900;
    /// @}

    /// @name Memory access, TLB, and faults
    /// @{
    /** One cached load/store issued by a workload touch. */
    Duration memAccess = 4;
    /** L2 TLB hit penalty on an L1 TLB miss. */
    Duration l2TlbHit = 7;
    /** Page-table walk on a full TLB miss. */
    Duration ptWalk = 60;
    /** Minor page fault (trap, alloc, map, return). */
    Duration minorFault = 1600;
    /**
     * Extra cost of a 2 MiB huge-page fault over a base fault
     * (contiguous allocation + zeroing a whole region).
     */
    Duration hugeFaultExtra = 22 * kUsec;
    /** INVLPG of one local TLB entry. */
    Duration invlpg = 120;
    /** Full local TLB flush (CR3 write). */
    Duration tlbFullFlush = 600;
    /** Extra LLC-miss penalty on a local access. */
    Duration llcMissPenalty = 60;
    /** Extra penalty when the miss is served from a remote node. */
    Duration llcRemotePenaltyPerHop = 50;
    /// @}

    /// @name IPI fabric (differs per machine preset)
    /// @{
    /**
     * Writing the APIC ICR for one destination. The APIC has no
     * multicast, so the initiator serializes one write per target
     * (the paper's reason shootdowns scale with core count).
     */
    Duration ipiSendBase = 150;
    /** Additional ICR/send cost per interconnect hop to the target. */
    Duration ipiSendPerHop = 100;
    /** IPI flight time to a same-socket core. */
    Duration ipiDeliveryBase = 1500;
    /** Additional flight time per interconnect hop. */
    Duration ipiDeliveryPerHop = 1200;
    /** Remote interrupt entry/exit (before any TLB work). */
    Duration ipiHandlerFixed = 500;
    /** Cache lines the handler evicts from the victim's LLC. */
    unsigned ipiHandlerCacheLines = 24;
    /// @}

    /// @name Cache-coherence transfers
    /// @{
    /** Transferring one cache line within a socket. */
    Duration cachelineBase = 250;
    /** Additional transfer cost per interconnect hop. */
    Duration cachelinePerHop = 200;
    /// @}

    /// @name Scheduler
    /// @{
    /** Scheduler tick interval (1 ms in Linux x86). */
    Duration tickInterval = 1 * kMsec;
    /** Fixed work in every scheduler tick. */
    Duration schedTickFixed = 300;
    /** A context switch (excluding any TLB flush). */
    Duration ctxSwitch = 1500;
    /// @}

    /// @name LATR mechanism (table 5 anchors)
    /// @{
    /** Saving one LATR state (132.3 ns in the paper). */
    Duration latrStateSave = 132;
    /** Fixed cost of one state sweep over all cores' rings. */
    Duration latrSweepFixed = 120;
    /** Additional sweep cost per state that matches this core. */
    Duration latrSweepPerMatch = 38;
    /** Background reclamation cost per lazily freed page. */
    Duration latrReclaimPerPage = 150;
    /** Interval of the background reclamation pass. */
    Duration latrReclaimInterval = 1 * kMsec;
    /**
     * Age a state must reach before its pages are reclaimed: two
     * tick periods, because ticks are unsynchronized across cores.
     */
    Duration latrReclaimDelay = 2 * kMsec;
    /// @}

    /// @name ABIS (access-bit tracking) overheads
    /// @{
    /**
     * Extra work per page fault to maintain sharing info. Tracking
     * needs access bits to stay meaningful, which costs extra TLB
     * flushes and uncached PTE updates on the fault path ("the
     * operations in ABIS to track page sharing introduce additional
     * overheads", paper section 2.3).
     */
    Duration abisPerFault = 850;
    /** Access-bit harvest per unmapped page at munmap time. */
    Duration abisPerPageScan = 1150;
    /// @}

    /// @name Barrelfish-style message passing
    /// @{
    /** Writing one per-core message channel (a cache line). */
    Duration bfSendPerTarget = 90;
    /**
     * Worst-case delay until a remote kernel polls its channel; the
     * actual delay is drawn uniformly from [0, this].
     */
    Duration bfPollWindow = 2000;
    /// @}

    /// @name Page migration / AutoNUMA
    /// @{
    /** Fixed migration cost (fault handling, alloc on target node). */
    Duration migrateBase = 60 * kUsec;
    /** Copying one 4 KiB page across the interconnect. */
    Duration migrateCopyPerPage = 2000;
    /** Extra cost of a NUMA-hint (prot-none) fault over a plain one. */
    Duration numaHintFaultExtra = 800;
    /** AutoNUMA scan cost per PTE sampled. */
    Duration numaScanPerPage = 150;
    /// @}

    /// @name TLB shootdown batching
    /// @{
    /**
     * Above this many pages in one shootdown, both Linux and LATR
     * flush the whole TLB instead of INVLPG-ing each page (half the
     * 64-entry L1 D-TLB, as in Linux).
     */
    unsigned fullFlushThreshold = 33;
    /// @}

    /** IPI send cost toward a target @p hops sockets away. */
    Duration
    ipiSendCost(unsigned hops) const
    {
        return ipiSendBase + ipiSendPerHop * hops;
    }

    /** IPI flight time toward a target @p hops sockets away. */
    Duration
    ipiDeliveryCost(unsigned hops) const
    {
        return ipiDeliveryBase + ipiDeliveryPerHop * hops;
    }

    /** Cache-line transfer cost across @p hops sockets. */
    Duration
    cachelineCost(unsigned hops) const
    {
        return cachelineBase + cachelinePerHop * hops;
    }

    /** Local TLB-invalidation cost for @p pages pages. */
    Duration
    localInvalidateCost(std::uint64_t pages) const
    {
        if (pages >= fullFlushThreshold)
            return tlbFullFlush;
        return invlpg * pages;
    }
};

/** Cost model tuned to the 2-socket, 16-core commodity machine. */
CostModel commodityCostModel();

/** Cost model tuned to the 8-socket, 120-core large NUMA machine. */
CostModel largeNumaCostModel();

} // namespace latr

#endif // LATR_TOPO_COST_MODEL_HH_
