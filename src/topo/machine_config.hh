/**
 * @file
 * Machine configuration presets mirroring table 3 of the paper: the
 * commodity 2-socket/16-core E5-2630 v3 box and the large NUMA
 * 8-socket/120-core E7-8870 v2 box, plus the knobs the paper's design
 * discussion exposes (PCID use, tickless idle, LATR ring size).
 */

#ifndef LATR_TOPO_MACHINE_CONFIG_HH_
#define LATR_TOPO_MACHINE_CONFIG_HH_

#include <string>

#include "sim/types.hh"
#include "topo/cost_model.hh"

namespace latr
{

/** Full static description of a simulated machine. */
struct MachineConfig
{
    /** Human-readable name used in bench output. */
    std::string name = "machine";

    /// @name Topology (table 3)
    /// @{
    unsigned sockets = 2;
    unsigned coresPerSocket = 8;
    /** Physical memory per NUMA node, in 4 KiB frames. */
    std::uint64_t framesPerNode = 256 * 1024; // 1 GiB/node default
    /// @}

    /// @name TLB (table 3)
    /// @{
    unsigned l1TlbEntries = 64;
    unsigned l2TlbEntries = 1024;
    /// @}

    /// @name LLC model (table 3)
    /// @{
    /** LLC size per socket in bytes. */
    std::uint64_t llcBytesPerSocket = 20ULL * 1024 * 1024;
    unsigned llcWays = 16;
    unsigned llcLineBytes = 64;
    /// @}

    /// @name OS knobs
    /// @{
    /** x86 PCIDs: Linux 4.10 elects not to use them (paper 4.5). */
    bool pcidEnabled = false;
    /** Tickless idle (CONFIG_NO_HZ, paper section 7). */
    bool ticklessIdle = true;
    /// @}

    /// @name LATR knobs (paper 4.1, section 8)
    /// @{
    /** Per-core LATR states; 64 in the paper. */
    unsigned latrStatesPerCore = 64;
    /**
     * Sweep at context switches in addition to scheduler ticks (the
     * paper's design). Disabling isolates the ticks' contribution —
     * an ablation; correctness is unaffected because reclamation
     * still waits for the CPU mask to clear.
     */
    bool latrSweepAtContextSwitch = true;
    /**
     * Reclaim on the paper's time bound alone (free a state once it
     * is latrReclaimDelay old, whether or not every CPU-mask bit
     * cleared), instead of this implementation's stricter
     * "deactivated AND aged" rule. Exists to validate the paper's
     * two-tick-period argument: with time-only reclamation a delay
     * under two periods demonstrably breaks the reuse invariant
     * (see bench_ablation_reclaim), while 2 ms is safe.
     */
    bool latrTimeOnlyReclaim = false;
    /**
     * Model the section 7 "globally coherent scratchpad" proposal:
     * LATR states live in a dedicated scratchpad rather than the
     * LLC, so sweeps touch no cache lines (set the reduced
     * save/sweep costs in `cost` to complete the model).
     */
    bool latrScratchpad = false;
    /// @}

    /// @name Fault injection (testing the checkers, never production)
    /// @{
    /**
     * Deliberately break LATR: skip the per-core sweep at scheduler
     * ticks and context switches, so remote TLB entries outlive the
     * one-epoch staleness bound. Exists solely so tests can prove
     * the staleness oracle (src/check/) catches a broken policy.
     */
    bool injectSkipLatrSweep = false;
    /**
     * Deliberately wreck PredictivePolicy's sharer prediction: every
     * free operation predicts the *empty* sharer set, so every true
     * sharer is missed. Unlike injectSkipLatrSweep this must NOT
     * trip the staleness oracle — the mirrored-TLB verification pass
     * catches each miss and the full-mask fallback restores
     * coherence within the contract. Tests use it to prove that
     * correctness never depends on prediction accuracy.
     */
    bool injectMispredictSharers = false;
    /// @}

    /// @name Engine debugging
    /// @{
    /**
     * Force the pre-optimization naive engine paths: per-core tick
     * events instead of the tick wheel, and full LATR sweep scans
     * instead of the pendingSweepers_ elision mask. Both paths must
     * produce byte-identical simulated results — this knob exists so
     * tests (and `--no-fastpath` on the CLIs) can prove it. Never a
     * model change, only a host-speed one.
     */
    bool noFastpath = false;
    /// @}

    /// @name Parallel engine
    /// @{
    /**
     * Compute threads for the optimistic batched engine: 0 keeps the
     * classic sequential event loop; N >= 1 runs batched dispatch
     * with N compute lanes (the coordinator plus N-1 workers). Any
     * value yields byte-identical simulated results — commits always
     * replay in sequential (tick, seq) order — so this is a
     * host-speed knob, never a model change.
     */
    unsigned simThreads = 0;
    /**
     * Pin the parallel engine's worker threads to host CPUs (worker
     * lane k to CPU k mod the host CPU count). Off by default:
     * concurrent machines — `--jobs` bench sweeps, parallel test
     * shards — would otherwise stack every executor's workers on the
     * same low-numbered CPUs. Turn on (`--pin-sim-threads` on the
     * benches) for single-machine throughput runs on an idle host.
     * Like simThreads, never affects simulated results.
     */
    bool pinSimThreads = false;
    /// @}

    /** All latency constants. */
    CostModel cost;

    unsigned totalCores() const { return sockets * coresPerSocket; }

    /**
     * The 2-socket, 16-core commodity data-center machine
     * (E5-2630 v3, 128 GB, 20 MB LLC/socket).
     */
    static MachineConfig commodity2S16C();

    /**
     * The 8-socket, 120-core large NUMA machine (E7-8870 v2, 768 GB,
     * 30 MB LLC/socket).
     */
    static MachineConfig largeNuma8S120C();
};

} // namespace latr

#endif // LATR_TOPO_MACHINE_CONFIG_HH_
