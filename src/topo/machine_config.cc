#include "topo/machine_config.hh"

namespace latr
{

MachineConfig
MachineConfig::commodity2S16C()
{
    MachineConfig cfg;
    cfg.name = "commodity-2S16C (E5-2630 v3)";
    cfg.sockets = 2;
    cfg.coresPerSocket = 8;
    cfg.framesPerNode = 256 * 1024; // scaled-down 1 GiB/node
    cfg.l1TlbEntries = 64;
    cfg.l2TlbEntries = 1024;
    cfg.llcBytesPerSocket = 20ULL * 1024 * 1024;
    cfg.llcWays = 20;
    cfg.cost = commodityCostModel();
    return cfg;
}

MachineConfig
MachineConfig::largeNuma8S120C()
{
    MachineConfig cfg;
    cfg.name = "large-NUMA-8S120C (E7-8870 v2)";
    cfg.sockets = 8;
    cfg.coresPerSocket = 15;
    cfg.framesPerNode = 256 * 1024;
    cfg.l1TlbEntries = 64;
    cfg.l2TlbEntries = 512;
    cfg.llcBytesPerSocket = 30ULL * 1024 * 1024;
    cfg.llcWays = 20;
    cfg.cost = largeNumaCostModel();
    return cfg;
}

} // namespace latr
