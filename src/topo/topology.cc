#include "topo/topology.hh"

#include "sim/logging.hh"

namespace latr
{

NumaTopology::NumaTopology(unsigned sockets, unsigned cores_per_socket)
    : sockets_(sockets), coresPerSocket_(cores_per_socket)
{
    if (sockets == 0 || cores_per_socket == 0)
        fatal("topology needs at least one socket and one core");
    if (totalCores() > CpuMask::kMaxCores)
        fatal("topology with %u cores exceeds the %u-core CpuMask limit",
              totalCores(), CpuMask::kMaxCores);
}

NodeId
NumaTopology::nodeOf(CoreId core) const
{
    if (core >= totalCores())
        panic("nodeOf: core %u out of range", core);
    return core / coresPerSocket_;
}

std::vector<CoreId>
NumaTopology::coresOnNode(NodeId node) const
{
    if (node >= sockets_)
        panic("coresOnNode: node %u out of range", node);
    std::vector<CoreId> cores;
    cores.reserve(coresPerSocket_);
    for (unsigned i = 0; i < coresPerSocket_; ++i)
        cores.push_back(node * coresPerSocket_ + i);
    return cores;
}

unsigned
NumaTopology::socketHops(NodeId a, NodeId b) const
{
    if (a == b)
        return 0;
    unsigned hamming = __builtin_popcount(a ^ b);
    return hamming > 2 ? 2 : hamming;
}

unsigned
NumaTopology::hops(CoreId a, CoreId b) const
{
    return socketHops(nodeOf(a), nodeOf(b));
}

unsigned
NumaTopology::maxHops() const
{
    unsigned m = 0;
    for (NodeId a = 0; a < sockets_; ++a)
        for (NodeId b = 0; b < sockets_; ++b)
            m = std::max(m, socketHops(a, b));
    return m;
}

} // namespace latr
