#include "topo/cost_model.hh"

namespace latr
{

CostModel
commodityCostModel()
{
    CostModel cm;
    // One cross-socket IPI lands in ~2.7 us (paper section 1):
    // 1.5 us base + 1.2 us for the single QPI hop.
    cm.ipiDeliveryBase = 1500;
    cm.ipiDeliveryPerHop = 1200;
    cm.ipiSendBase = 100;
    cm.ipiSendPerHop = 90;
    return cm;
}

CostModel
largeNumaCostModel()
{
    CostModel cm;
    // A two-hop IPI lands in ~6.6 us (paper section 1); ICR writes
    // serialize more heavily on the E7 fabric, which is what pushes a
    // 120-core shootdown to ~80 us (figure 7).
    cm.ipiDeliveryBase = 1600;
    cm.ipiDeliveryPerHop = 2500;
    cm.ipiSendBase = 160;
    cm.ipiSendPerHop = 290;
    // Cross-socket cache-line transfers are slower on the bigger
    // fabric as well.
    cm.cachelinePerHop = 320;
    cm.vmaPerResidentCore = 300;
    return cm;
}

} // namespace latr
