/**
 * @file
 * NUMA topology: the arrangement of cores into sockets and the hop
 * distance between cores, which drives IPI-delivery and cache-line
 * transfer latencies. Sockets are connected in a hypercube-like
 * point-to-point fabric (QPI), so inter-socket distance is the
 * Hamming distance between socket ids, capped at two hops — matching
 * the paper's observation that beyond three sockets an IPI "needs two
 * hops to reach the destination CPU".
 */

#ifndef LATR_TOPO_TOPOLOGY_HH_
#define LATR_TOPO_TOPOLOGY_HH_

#include <vector>

#include "sim/types.hh"

namespace latr
{

/** Socket/core layout of a simulated machine. */
class NumaTopology
{
  public:
    /**
     * @param sockets number of sockets (NUMA nodes), at least 1.
     * @param cores_per_socket cores on each socket, at least 1.
     */
    NumaTopology(unsigned sockets, unsigned cores_per_socket);

    unsigned sockets() const { return sockets_; }
    unsigned coresPerSocket() const { return coresPerSocket_; }
    unsigned totalCores() const { return sockets_ * coresPerSocket_; }

    /** NUMA node a core belongs to. */
    NodeId nodeOf(CoreId core) const;

    /** All cores on @p node, lowest id first. */
    std::vector<CoreId> coresOnNode(NodeId node) const;

    /**
     * Interconnect hops between two sockets: 0 within a socket, else
     * the Hamming distance between socket ids capped at 2.
     */
    unsigned socketHops(NodeId a, NodeId b) const;

    /** Interconnect hops between the sockets of two cores. */
    unsigned hops(CoreId a, CoreId b) const;

    /** Largest hop count between any two cores. */
    unsigned maxHops() const;

  private:
    unsigned sockets_;
    unsigned coresPerSocket_;
};

} // namespace latr

#endif // LATR_TOPO_TOPOLOGY_HH_
