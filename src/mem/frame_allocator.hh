/**
 * @file
 * The physical memory allocator: per-NUMA-node free lists of 4 KiB
 * frames with reference counting (a simulated struct-page refcount).
 * LATR's lazy reclamation leans on the refcount: unmapped pages keep
 * a nonzero count until the background pass drops it, which is what
 * prevents premature reuse (paper section 4.2). A listener observes
 * allocation and final release so the invariant checker can prove no
 * frame is recycled while a TLB still maps it.
 */

#ifndef LATR_MEM_FRAME_ALLOCATOR_HH_
#define LATR_MEM_FRAME_ALLOCATOR_HH_

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace latr
{

/** Observes frame lifecycle (used by the invariant checker). */
class FrameListener
{
  public:
    virtual ~FrameListener() = default;

    /** A free frame was handed out (refcount 0 -> 1). */
    virtual void onFrameAlloc(Pfn pfn) = 0;

    /** A frame's refcount dropped to 0 and it returned to the pool. */
    virtual void onFrameFree(Pfn pfn) = 0;
};

/**
 * Per-node physical frame allocator. Frames are globally numbered;
 * node n owns [n * frames_per_node, (n + 1) * frames_per_node).
 */
class FrameAllocator
{
  public:
    /**
     * @param nodes number of NUMA nodes.
     * @param frames_per_node frames owned by each node.
     */
    FrameAllocator(unsigned nodes, std::uint64_t frames_per_node);

    FrameAllocator(const FrameAllocator &) = delete;
    FrameAllocator &operator=(const FrameAllocator &) = delete;

    /** Attach @p listener as the sole observer (nullptr detaches all). */
    void
    setListener(FrameListener *listener)
    {
        listeners_.clear();
        if (listener)
            listeners_.push_back(listener);
    }

    /** Attach an additional observer alongside any already present. */
    void
    addListener(FrameListener *listener)
    {
        if (listener)
            listeners_.push_back(listener);
    }

    /**
     * Allocate one frame, preferring @p node; falls back to other
     * nodes in order of distance-agnostic id. The frame starts with
     * refcount 1.
     * @return the frame, or kPfnInvalid if memory is exhausted.
     */
    Pfn alloc(NodeId node);

    /**
     * Allocate the lowest-numbered free frame of @p node (no
     * fallback) — the compaction daemon's migration target. Linear
     * in the free-list size; meant for background daemons, not the
     * fault path.
     * @return the frame, or kPfnInvalid if the node is exhausted.
     */
    Pfn allocLowest(NodeId node);

    /**
     * Allocate a 2 MiB huge frame on @p node: the lowest free,
     * kHugePageSpan-aligned run of kHugePageSpan base frames. Every
     * constituent frame gets refcount 1. Linear scan — background /
     * fault-slow-path use. Fragmentation makes this fail long before
     * the node is full (which is what the compaction daemon exists
     * to repair).
     * @return the base frame, or kPfnInvalid.
     */
    Pfn allocHuge(NodeId node);

    /** Release a huge frame allocated with allocHuge(). */
    void putHuge(Pfn base);

    /** Increment @p pfn's refcount (page shared by another mapping). */
    void get(Pfn pfn);

    /**
     * Decrement @p pfn's refcount; at zero the frame returns to its
     * node's free list (and the listener fires).
     */
    void put(Pfn pfn);

    /** Current refcount of @p pfn. */
    std::uint32_t refcount(Pfn pfn) const;

    /** Node that owns @p pfn. */
    NodeId nodeOf(Pfn pfn) const;

    /** Frames currently free on @p node. */
    std::uint64_t freeFrames(NodeId node) const;

    /** Frames currently allocated across all nodes. */
    std::uint64_t allocatedFrames() const { return allocated_; }

    std::uint64_t framesPerNode() const { return framesPerNode_; }
    unsigned nodes() const { return nodes_; }

  private:
    void checkPfn(Pfn pfn) const;

    void
    notifyAlloc(Pfn pfn)
    {
        for (FrameListener *l : listeners_)
            l->onFrameAlloc(pfn);
    }

    void
    notifyFree(Pfn pfn)
    {
        for (FrameListener *l : listeners_)
            l->onFrameFree(pfn);
    }

    unsigned nodes_;
    std::uint64_t framesPerNode_;
    std::vector<std::vector<Pfn>> freeLists_; // per node, LIFO
    std::vector<std::uint32_t> refcounts_;    // per frame
    std::uint64_t allocated_ = 0;
    std::vector<FrameListener *> listeners_;
};

} // namespace latr

#endif // LATR_MEM_FRAME_ALLOCATOR_HH_
