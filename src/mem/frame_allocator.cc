#include "mem/frame_allocator.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace latr
{

FrameAllocator::FrameAllocator(unsigned nodes,
                               std::uint64_t frames_per_node)
    : nodes_(nodes), framesPerNode_(frames_per_node)
{
    if (nodes == 0 || frames_per_node == 0)
        fatal("frame allocator needs at least one node and one frame");
    freeLists_.resize(nodes);
    refcounts_.assign(static_cast<std::size_t>(nodes) * frames_per_node,
                      0);
    // LIFO free lists: push high frames first so low frames come out
    // first, which keeps test output predictable.
    for (unsigned n = 0; n < nodes; ++n) {
        auto &list = freeLists_[n];
        list.reserve(frames_per_node);
        const Pfn base = static_cast<Pfn>(n) * frames_per_node;
        for (std::uint64_t i = frames_per_node; i-- > 0;)
            list.push_back(base + i);
    }
}

void
FrameAllocator::checkPfn(Pfn pfn) const
{
    if (pfn >= static_cast<Pfn>(nodes_) * framesPerNode_)
        panic("pfn %llu out of range",
              static_cast<unsigned long long>(pfn));
}

Pfn
FrameAllocator::alloc(NodeId node)
{
    if (node >= nodes_)
        panic("alloc from nonexistent node %u", node);
    for (unsigned i = 0; i < nodes_; ++i) {
        NodeId candidate = (node + i) % nodes_;
        auto &list = freeLists_[candidate];
        if (list.empty())
            continue;
        Pfn pfn = list.back();
        list.pop_back();
        if (refcounts_[pfn] != 0)
            panic("free list held frame %llu with refcount %u",
                  static_cast<unsigned long long>(pfn),
                  refcounts_[pfn]);
        refcounts_[pfn] = 1;
        ++allocated_;
        notifyAlloc(pfn);
        return pfn;
    }
    return kPfnInvalid;
}

Pfn
FrameAllocator::allocLowest(NodeId node)
{
    if (node >= nodes_)
        panic("allocLowest from nonexistent node %u", node);
    auto &list = freeLists_[node];
    if (list.empty())
        return kPfnInvalid;
    auto it = std::min_element(list.begin(), list.end());
    Pfn pfn = *it;
    *it = list.back();
    list.pop_back();
    if (refcounts_[pfn] != 0)
        panic("free list held frame %llu with refcount %u",
              static_cast<unsigned long long>(pfn), refcounts_[pfn]);
    refcounts_[pfn] = 1;
    ++allocated_;
    notifyAlloc(pfn);
    return pfn;
}

Pfn
FrameAllocator::allocHuge(NodeId node)
{
    if (node >= nodes_)
        panic("allocHuge from nonexistent node %u", node);
    const Pfn node_base = static_cast<Pfn>(node) * framesPerNode_;
    const Pfn node_end = node_base + framesPerNode_;
    // Scan aligned runs for one that is fully free.
    for (Pfn base = node_base; base + kHugePageSpan <= node_end;
         base += kHugePageSpan) {
        bool free_run = true;
        for (Pfn f = base; f < base + kHugePageSpan; ++f) {
            if (refcounts_[f] != 0) {
                free_run = false;
                break;
            }
        }
        if (!free_run)
            continue;
        // Claim the run: pull every frame out of the free list.
        auto &list = freeLists_[node];
        list.erase(std::remove_if(list.begin(), list.end(),
                                  [&](Pfn f) {
                                      return f >= base &&
                                             f < base + kHugePageSpan;
                                  }),
                   list.end());
        for (Pfn f = base; f < base + kHugePageSpan; ++f) {
            refcounts_[f] = 1;
            ++allocated_;
            notifyAlloc(f);
        }
        return base;
    }
    return kPfnInvalid;
}

void
FrameAllocator::putHuge(Pfn base)
{
    checkPfn(base);
    if (base % kHugePageSpan != 0)
        panic("putHuge on unaligned frame %llu",
              static_cast<unsigned long long>(base));
    // Base frame first: the invariant checker keys huge TLB entries
    // by the base frame, so a premature release is caught there.
    for (Pfn f = base; f < base + kHugePageSpan; ++f)
        put(f);
}

void
FrameAllocator::get(Pfn pfn)
{
    checkPfn(pfn);
    if (refcounts_[pfn] == 0)
        panic("get() on free frame %llu",
              static_cast<unsigned long long>(pfn));
    ++refcounts_[pfn];
}

void
FrameAllocator::put(Pfn pfn)
{
    checkPfn(pfn);
    if (refcounts_[pfn] == 0)
        panic("put() on free frame %llu",
              static_cast<unsigned long long>(pfn));
    if (--refcounts_[pfn] == 0) {
        --allocated_;
        notifyFree(pfn);
        freeLists_[nodeOf(pfn)].push_back(pfn);
    }
}

std::uint32_t
FrameAllocator::refcount(Pfn pfn) const
{
    checkPfn(pfn);
    return refcounts_[pfn];
}

NodeId
FrameAllocator::nodeOf(Pfn pfn) const
{
    checkPfn(pfn);
    return static_cast<NodeId>(pfn / framesPerNode_);
}

std::uint64_t
FrameAllocator::freeFrames(NodeId node) const
{
    if (node >= nodes_)
        panic("freeFrames of nonexistent node %u", node);
    return freeLists_[node].size();
}

} // namespace latr
