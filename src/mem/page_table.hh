/**
 * @file
 * A four-level, x86-64-style radix page table. Each level resolves
 * nine bits of the virtual page number; leaves hold PTEs with the
 * flag bits the paper's mechanisms manipulate: Present, Writable,
 * Accessed and Dirty (harvested by ABIS), and ProtNone (the NUMA-
 * hint state AutoNUMA uses to sample accesses).
 */

#ifndef LATR_MEM_PAGE_TABLE_HH_
#define LATR_MEM_PAGE_TABLE_HH_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "sim/types.hh"

namespace latr
{

/** PTE flag bits. */
enum PteFlag : std::uint8_t
{
    kPtePresent = 1 << 0,   ///< translation valid
    kPteWrite = 1 << 1,     ///< writable
    kPteAccessed = 1 << 2,  ///< set by hardware on access
    kPteDirty = 1 << 3,     ///< set by hardware on write
    kPteProtNone = 1 << 4,  ///< NUMA-hint: present but access faults
    kPteCow = 1 << 5,       ///< copy-on-write: write faults
    kPteHuge = 1 << 6,      ///< PMD-level 2 MiB mapping
};

/** A leaf page-table entry. */
struct Pte
{
    Pfn pfn = kPfnInvalid;
    std::uint8_t flags = 0;

    bool present() const { return flags & kPtePresent; }
    bool writable() const { return flags & kPteWrite; }
    bool accessed() const { return flags & kPteAccessed; }
    bool dirty() const { return flags & kPteDirty; }
    bool protNone() const { return flags & kPteProtNone; }
    bool cow() const { return flags & kPteCow; }
    bool huge() const { return flags & kPteHuge; }
};

/**
 * One process' page table. Nodes are allocated lazily on first map
 * and freed only with the table (matching Linux, which frees interior
 * nodes only at exit/unmap-large).
 */
class PageTable
{
  public:
    PageTable() = default;

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /**
     * Install a translation. Panics if a present mapping exists
     * (callers must unmap first; matching kernel behaviour where
     * double-mapping is a bug).
     */
    void map(Vpn vpn, Pfn pfn, std::uint8_t flags);

    /**
     * Remove a translation.
     * @return the old PTE; pte.present() is false if none existed.
     */
    Pte unmap(Vpn vpn);

    /**
     * Look up a PTE for modification; nullptr if no leaf exists.
     * Does not allocate.
     */
    Pte *find(Vpn vpn);

    /** Const lookup. */
    const Pte *find(Vpn vpn) const;

    /**
     * Simulate a hardware walk: looks up @p vpn and, when present
     * and not prot-none, sets Accessed (and Dirty when
     * @p is_write). @return the PTE or nullptr.
     */
    Pte *walkHardware(Vpn vpn, bool is_write);

    /** Set flag bits on an existing present PTE. */
    void setFlags(Vpn vpn, std::uint8_t flags);

    /** Clear flag bits on an existing present PTE. */
    void clearFlags(Vpn vpn, std::uint8_t flags);

    /**
     * Invoke @p fn on every present PTE in [start_vpn, end_vpn].
     * The callback may modify the PTE but must not map/unmap.
     */
    void forEachPresent(Vpn start_vpn, Vpn end_vpn,
                        const std::function<void(Vpn, Pte &)> &fn);

    /** Number of present leaf translations. */
    std::uint64_t presentPages() const { return present_; }

    /// @name 2 MiB (PMD-level) huge mappings
    /// @{

    /**
     * Install a huge mapping covering [base_vpn, base_vpn + 512).
     * @p base_vpn and @p base_pfn must be kHugePageSpan-aligned, and
     * no base-page mapping may exist in the range.
     */
    void mapHuge(Vpn base_vpn, Pfn base_pfn, std::uint8_t flags);

    /**
     * Remove a huge mapping.
     * @return the old entry; !present() if none existed.
     */
    Pte unmapHuge(Vpn base_vpn);

    /** Huge entry covering @p vpn (any page in the region). */
    Pte *findHuge(Vpn vpn);
    const Pte *findHuge(Vpn vpn) const;

    /** Present huge mappings. */
    std::uint64_t presentHugePages() const
    {
        return hugeEntries_.size();
    }

    /** Invoke @p fn on each present huge mapping (by base vpn). */
    void forEachHuge(const std::function<void(Vpn, Pte &)> &fn);

    /// @}

  private:
    static constexpr unsigned kBitsPerLevel = 9;
    static constexpr unsigned kFanout = 1 << kBitsPerLevel;
    static constexpr std::uint64_t kLevelMask = kFanout - 1;

    struct Leaf
    {
        std::array<Pte, kFanout> ptes{};
    };

    struct L2
    {
        std::array<std::unique_ptr<Leaf>, kFanout> children{};
    };

    struct L3
    {
        std::array<std::unique_ptr<L2>, kFanout> children{};
    };

    struct L4
    {
        std::array<std::unique_ptr<L3>, kFanout> children{};
    };

    static unsigned
    index(Vpn vpn, unsigned level)
    {
        // level 3 = top (L4 table), level 0 = leaf index.
        return static_cast<unsigned>(
            (vpn >> (kBitsPerLevel * level)) & kLevelMask);
    }

    Pte *lookup(Vpn vpn, bool create);

    L4 root_;
    std::uint64_t present_ = 0;
    /** PMD-level mappings, keyed by kHugePageSpan-aligned base vpn. */
    std::map<Vpn, Pte> hugeEntries_;
};

} // namespace latr

#endif // LATR_MEM_PAGE_TABLE_HH_
