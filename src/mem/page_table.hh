/**
 * @file
 * A four-level, x86-64-style radix page table. Each level resolves
 * nine bits of the virtual page number; leaves hold PTEs with the
 * flag bits the paper's mechanisms manipulate: Present, Writable,
 * Accessed and Dirty (harvested by ABIS), and ProtNone (the NUMA-
 * hint state AutoNUMA uses to sample accesses).
 */

#ifndef LATR_MEM_PAGE_TABLE_HH_
#define LATR_MEM_PAGE_TABLE_HH_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "sim/types.hh"

namespace latr
{

/** PTE flag bits. */
enum PteFlag : std::uint8_t
{
    kPtePresent = 1 << 0,   ///< translation valid
    kPteWrite = 1 << 1,     ///< writable
    kPteAccessed = 1 << 2,  ///< set by hardware on access
    kPteDirty = 1 << 3,     ///< set by hardware on write
    kPteProtNone = 1 << 4,  ///< NUMA-hint: present but access faults
    kPteCow = 1 << 5,       ///< copy-on-write: write faults
    kPteHuge = 1 << 6,      ///< PMD-level 2 MiB mapping
};

/** A leaf page-table entry. */
struct Pte
{
    Pfn pfn = kPfnInvalid;
    std::uint8_t flags = 0;

    bool present() const { return flags & kPtePresent; }
    bool writable() const { return flags & kPteWrite; }
    bool accessed() const { return flags & kPteAccessed; }
    bool dirty() const { return flags & kPteDirty; }
    bool protNone() const { return flags & kPteProtNone; }
    bool cow() const { return flags & kPteCow; }
    bool huge() const { return flags & kPteHuge; }
};

/**
 * One process' page table. Nodes are allocated lazily on first map
 * and freed only with the table (matching Linux, which frees interior
 * nodes only at exit/unmap-large).
 */
class PageTable
{
  public:
    PageTable() = default;

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /**
     * Install a translation. Panics if a present mapping exists
     * (callers must unmap first; matching kernel behaviour where
     * double-mapping is a bug).
     */
    void map(Vpn vpn, Pfn pfn, std::uint8_t flags);

    /**
     * Remove a translation.
     * @return the old PTE; pte.present() is false if none existed.
     */
    Pte unmap(Vpn vpn);

    /**
     * Look up a PTE for modification; nullptr if no leaf exists.
     * Does not allocate.
     */
    Pte *find(Vpn vpn);

    /** Const lookup. */
    const Pte *find(Vpn vpn) const;

    /**
     * Simulate a hardware walk: looks up @p vpn and, when present
     * and not prot-none, sets Accessed (and Dirty when
     * @p is_write). @return the PTE or nullptr.
     */
    Pte *walkHardware(Vpn vpn, bool is_write);

    /** Set flag bits on an existing present PTE. */
    void setFlags(Vpn vpn, std::uint8_t flags);

    /** Clear flag bits on an existing present PTE. */
    void clearFlags(Vpn vpn, std::uint8_t flags);

    /**
     * Invoke @p fn on every present PTE in [start_vpn, end_vpn], in
     * ascending VPN order. The callback may modify the PTE but must
     * not map/unmap. Only allocated subtrees overlapping the range
     * are walked, and every level's loop is clamped to the range —
     * a 4-page munmap touches one leaf, not the whole table. This is
     * the kernel's inner loop for unmap/protect/NUMA sweeps, so it
     * is a template: the callback inlines instead of going through
     * std::function.
     */
    template <typename Fn>
    void
    forEachPresent(Vpn start_vpn, Vpn end_vpn, Fn &&fn)
    {
        const unsigned s3 = index(start_vpn, 3);
        const unsigned e3 = index(end_vpn, 3);
        for (unsigned i3 = s3; i3 <= e3; ++i3) {
            auto &l3 = root_.children[i3];
            if (!l3)
                continue;
            const bool lo3 = i3 == s3, hi3 = i3 == e3;
            const unsigned s2 = lo3 ? index(start_vpn, 2) : 0;
            const unsigned e2 = hi3 ? index(end_vpn, 2) : kFanout - 1;
            for (unsigned i2 = s2; i2 <= e2; ++i2) {
                auto &l2 = l3->children[i2];
                if (!l2)
                    continue;
                const bool lo2 = lo3 && i2 == s2;
                const bool hi2 = hi3 && i2 == e2;
                const unsigned s1 = lo2 ? index(start_vpn, 1) : 0;
                const unsigned e1 =
                    hi2 ? index(end_vpn, 1) : kFanout - 1;
                for (unsigned i1 = s1; i1 <= e1; ++i1) {
                    auto &leaf = l2->children[i1];
                    if (!leaf)
                        continue;
                    const bool lo1 = lo2 && i1 == s1;
                    const bool hi1 = hi2 && i1 == e1;
                    const unsigned s0 =
                        lo1 ? index(start_vpn, 0) : 0;
                    const unsigned e0 =
                        hi1 ? index(end_vpn, 0) : kFanout - 1;
                    const Vpn base =
                        (static_cast<Vpn>(i3)
                         << (kBitsPerLevel * 3)) |
                        (static_cast<Vpn>(i2)
                         << (kBitsPerLevel * 2)) |
                        (static_cast<Vpn>(i1) << kBitsPerLevel);
                    for (unsigned i0 = s0; i0 <= e0; ++i0) {
                        Pte &pte = leaf->ptes[i0];
                        if (pte.present())
                            fn(base | i0, pte);
                    }
                }
            }
        }
    }

    /** Number of present leaf translations. */
    std::uint64_t presentPages() const { return present_; }

    /// @name 2 MiB (PMD-level) huge mappings
    /// @{

    /**
     * Install a huge mapping covering [base_vpn, base_vpn + 512).
     * @p base_vpn and @p base_pfn must be kHugePageSpan-aligned, and
     * no base-page mapping may exist in the range.
     */
    void mapHuge(Vpn base_vpn, Pfn base_pfn, std::uint8_t flags);

    /**
     * Remove a huge mapping.
     * @return the old entry; !present() if none existed.
     */
    Pte unmapHuge(Vpn base_vpn);

    /** Huge entry covering @p vpn (any page in the region). */
    Pte *findHuge(Vpn vpn);
    const Pte *findHuge(Vpn vpn) const;

    /** Present huge mappings. */
    std::uint64_t presentHugePages() const
    {
        return hugeEntries_.size();
    }

    /** Invoke @p fn on each present huge mapping (by base vpn). */
    void forEachHuge(const std::function<void(Vpn, Pte &)> &fn);

    /// @}

  private:
    static constexpr unsigned kBitsPerLevel = 9;
    static constexpr unsigned kFanout = 1 << kBitsPerLevel;
    static constexpr std::uint64_t kLevelMask = kFanout - 1;

    struct Leaf
    {
        std::array<Pte, kFanout> ptes{};
    };

    struct L2
    {
        std::array<std::unique_ptr<Leaf>, kFanout> children{};
    };

    struct L3
    {
        std::array<std::unique_ptr<L2>, kFanout> children{};
    };

    struct L4
    {
        std::array<std::unique_ptr<L3>, kFanout> children{};
    };

    static unsigned
    index(Vpn vpn, unsigned level)
    {
        // level 3 = top (L4 table), level 0 = leaf index.
        return static_cast<unsigned>(
            (vpn >> (kBitsPerLevel * level)) & kLevelMask);
    }

    Pte *lookup(Vpn vpn, bool create);

    L4 root_;
    std::uint64_t present_ = 0;
    /** PMD-level mappings, keyed by kHugePageSpan-aligned base vpn. */
    std::map<Vpn, Pte> hugeEntries_;
};

} // namespace latr

#endif // LATR_MEM_PAGE_TABLE_HH_
