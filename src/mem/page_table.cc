#include "mem/page_table.hh"

#include "sim/logging.hh"

namespace latr
{

Pte *
PageTable::lookup(Vpn vpn, bool create)
{
    if (vpn >= (1ULL << (kBitsPerLevel * 4)))
        panic("vpn %llu beyond 4-level reach",
              static_cast<unsigned long long>(vpn));

    auto &l3slot = root_.children[index(vpn, 3)];
    if (!l3slot) {
        if (!create)
            return nullptr;
        l3slot = std::make_unique<L3>();
    }
    auto &l2slot = l3slot->children[index(vpn, 2)];
    if (!l2slot) {
        if (!create)
            return nullptr;
        l2slot = std::make_unique<L2>();
    }
    auto &leafslot = l2slot->children[index(vpn, 1)];
    if (!leafslot) {
        if (!create)
            return nullptr;
        leafslot = std::make_unique<Leaf>();
    }
    return &leafslot->ptes[index(vpn, 0)];
}

void
PageTable::map(Vpn vpn, Pfn pfn, std::uint8_t flags)
{
    Pte *pte = lookup(vpn, true);
    if (pte->present())
        panic("double map of vpn %llu",
              static_cast<unsigned long long>(vpn));
    pte->pfn = pfn;
    pte->flags = static_cast<std::uint8_t>(flags | kPtePresent);
    ++present_;
}

Pte
PageTable::unmap(Vpn vpn)
{
    Pte *pte = lookup(vpn, false);
    if (!pte || !pte->present())
        return Pte{};
    Pte old = *pte;
    *pte = Pte{};
    --present_;
    return old;
}

Pte *
PageTable::find(Vpn vpn)
{
    Pte *pte = lookup(vpn, false);
    if (!pte || !pte->present())
        return nullptr;
    return pte;
}

const Pte *
PageTable::find(Vpn vpn) const
{
    return const_cast<PageTable *>(this)->find(vpn);
}

Pte *
PageTable::walkHardware(Vpn vpn, bool is_write)
{
    Pte *pte = find(vpn);
    if (!pte)
        return nullptr;
    if (!pte->protNone()) {
        pte->flags |= kPteAccessed;
        if (is_write && pte->writable())
            pte->flags |= kPteDirty;
    }
    return pte;
}

void
PageTable::setFlags(Vpn vpn, std::uint8_t flags)
{
    Pte *pte = find(vpn);
    if (!pte)
        panic("setFlags on unmapped vpn %llu",
              static_cast<unsigned long long>(vpn));
    pte->flags |= flags;
}

void
PageTable::clearFlags(Vpn vpn, std::uint8_t flags)
{
    Pte *pte = find(vpn);
    if (!pte)
        panic("clearFlags on unmapped vpn %llu",
              static_cast<unsigned long long>(vpn));
    pte->flags &= static_cast<std::uint8_t>(~flags);
    if (!(pte->flags & kPtePresent))
        panic("clearFlags must not clear Present; use unmap()");
}

void
PageTable::mapHuge(Vpn base_vpn, Pfn base_pfn, std::uint8_t flags)
{
    if (base_vpn % kHugePageSpan != 0 ||
        base_pfn % kHugePageSpan != 0)
        panic("mapHuge with unaligned vpn/pfn");
    if (hugeEntries_.count(base_vpn))
        panic("double huge map of vpn %llu",
              static_cast<unsigned long long>(base_vpn));
    // A PMD mapping and base PTEs cannot coexist in one region.
    bool base_present = false;
    forEachPresent(base_vpn, base_vpn + kHugePageSpan - 1,
                   [&](Vpn, Pte &) { base_present = true; });
    if (base_present)
        panic("mapHuge over existing base mappings");
    Pte pte;
    pte.pfn = base_pfn;
    pte.flags =
        static_cast<std::uint8_t>(flags | kPtePresent | kPteHuge);
    hugeEntries_[base_vpn] = pte;
}

Pte
PageTable::unmapHuge(Vpn base_vpn)
{
    auto it = hugeEntries_.find(hugeBaseOf(base_vpn));
    if (it == hugeEntries_.end())
        return Pte{};
    Pte old = it->second;
    hugeEntries_.erase(it);
    return old;
}

Pte *
PageTable::findHuge(Vpn vpn)
{
    auto it = hugeEntries_.find(hugeBaseOf(vpn));
    return it == hugeEntries_.end() ? nullptr : &it->second;
}

const Pte *
PageTable::findHuge(Vpn vpn) const
{
    return const_cast<PageTable *>(this)->findHuge(vpn);
}

void
PageTable::forEachHuge(const std::function<void(Vpn, Pte &)> &fn)
{
    for (auto &kv : hugeEntries_)
        fn(kv.first, kv.second);
}

} // namespace latr
