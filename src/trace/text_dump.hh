/**
 * @file
 * Text sink: renders a TraceRecorder snapshot as a human-readable
 * timeline, one line per record, sorted by tick. This is the sink
 * behind examples/timeline_trace's figure 2/3 output: with
 * detail off and a category filter, it prints exactly the classic
 *
 *     t=   12.34 us  <narrative text>
 *
 * lines; with detail on it annotates each line with the category,
 * core, mm, and span durations — the quick look before reaching for
 * Perfetto.
 */

#ifndef LATR_TRACE_TEXT_DUMP_HH_
#define LATR_TRACE_TEXT_DUMP_HH_

#include <cstdio>
#include <string>

#include "trace/trace.hh"

namespace latr
{

/** Rendering options for writeTextTimeline. */
struct TextDumpOptions
{
    /** Tick subtracted from every timestamp before printing. */
    Tick origin = 0;
    /** When set, only records with this exact category print. */
    const char *categoryFilter = nullptr;
    /**
     * Annotate lines with [category], core/mm attribution, and span
     * durations. Off reproduces timeline_trace's bare format.
     */
    bool detail = true;
};

/** Print the trace as a timeline to @p out (e.g. stdout). */
void writeTextTimeline(const TraceRecorder &recorder,
                       const TextDumpOptions &options, std::FILE *out);

/** As writeTextTimeline, into a string. */
std::string textTimeline(const TraceRecorder &recorder,
                         const TextDumpOptions &options);

} // namespace latr

#endif // LATR_TRACE_TEXT_DUMP_HH_
