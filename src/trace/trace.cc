#include "trace/trace.hh"

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace latr
{

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity)
{
    if (capacity_ == 0)
        fatal("TraceRecorder needs a nonzero capacity");
}

Tick
TraceRecorder::now() const
{
    return clock_ ? clock_->now() : 0;
}

void
TraceRecorder::setCapacity(std::size_t capacity)
{
    if (capacity == 0)
        fatal("TraceRecorder needs a nonzero capacity");
    capacity_ = capacity;
    ring_.clear();
    ring_.shrink_to_fit();
    writeAt_ = 0;
    dropped_ = 0;
}

std::size_t
TraceRecorder::size() const
{
    return ring_.size();
}

void
TraceRecorder::clear()
{
    ring_.clear();
    writeAt_ = 0;
    dropped_ = 0;
    total_ = 0;
}

void
TraceRecorder::push(const TraceRecord &record)
{
    ++total_;
    if (ring_.size() < capacity_) {
        ring_.push_back(record);
        return;
    }
    // Full: overwrite the oldest record. writeAt_ is the index of
    // the oldest record once the ring has wrapped.
    ring_[writeAt_] = record;
    writeAt_ = (writeAt_ + 1) % capacity_;
    ++dropped_;
}

std::vector<TraceRecord>
TraceRecorder::snapshot() const
{
    std::vector<TraceRecord> out;
    out.reserve(ring_.size());
    // Oldest first: [writeAt_, end) then [0, writeAt_).
    for (std::size_t i = writeAt_; i < ring_.size(); ++i)
        out.push_back(ring_[i]);
    for (std::size_t i = 0; i < writeAt_; ++i)
        out.push_back(ring_[i]);
    return out;
}

SpanId
TraceRecorder::beginSpanSlow(const char *category, const char *name,
                             Tick at, CoreId core, MmId mm,
                             std::uint64_t arg)
{
    TraceRecord r;
    r.at = at;
    r.id = nextSpan_++;
    r.category = category;
    r.name = name;
    r.kind = TraceKind::SpanBegin;
    r.core = core;
    r.mm = mm;
    r.arg = arg;
    push(r);
    return r.id;
}

void
TraceRecorder::endSpanSlow(SpanId id, Tick at)
{
    TraceRecord r;
    r.at = at;
    r.id = id;
    r.kind = TraceKind::SpanEnd;
    push(r);
}

void
TraceRecorder::instantSlow(const char *category, const char *name,
                           Tick at, CoreId core, MmId mm,
                           std::uint64_t arg)
{
    TraceRecord r;
    r.at = at;
    r.category = category;
    r.name = name;
    r.kind = TraceKind::Instant;
    r.core = core;
    r.mm = mm;
    r.arg = arg;
    push(r);
}

void
TraceRecorder::counterSlow(const char *category, const char *name,
                           Tick at, double value, CoreId core)
{
    TraceRecord r;
    r.at = at;
    r.category = category;
    r.name = name;
    r.kind = TraceKind::Counter;
    r.core = core;
    r.value = value;
    push(r);
}

const char *
TraceRecorder::intern(const std::string &text)
{
    auto it = internIndex_.find(text);
    if (it != internIndex_.end())
        return it->second;
    internPool_.push_back(text);
    const char *stable = internPool_.back().c_str();
    internIndex_.emplace(text, stable);
    return stable;
}

} // namespace latr
