#include "trace/text_dump.hh"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <vector>

namespace latr
{

namespace
{

struct SpanInfo
{
    const char *category;
    const char *name;
    CoreId core;
    MmId mm;
    Tick begin;
};

void
appendLine(std::string &out, Tick at, Tick origin,
           const std::string &text)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "  t=%8.2f us  ",
                  (at - origin) / 1000.0);
    out += buf;
    out += text;
    out += '\n';
}

std::string
attribution(CoreId core, MmId mm, std::uint64_t arg)
{
    std::string s;
    char buf[64];
    if (core != kTraceNoCore) {
        std::snprintf(buf, sizeof buf, " core=%u", core);
        s += buf;
    }
    if (mm != kTraceNoMm) {
        std::snprintf(buf, sizeof buf, " mm=%llu",
                      static_cast<unsigned long long>(mm));
        s += buf;
    }
    if (arg != 0) {
        std::snprintf(buf, sizeof buf, " arg=%llu",
                      static_cast<unsigned long long>(arg));
        s += buf;
    }
    return s;
}

} // namespace

std::string
textTimeline(const TraceRecorder &recorder,
             const TextDumpOptions &options)
{
    std::vector<TraceRecord> records = recorder.snapshot();

    // Span ends carry only the id; remember each begin so the end
    // line can name it (and compute the duration).
    std::unordered_map<SpanId, SpanInfo> spans;
    for (const TraceRecord &r : records)
        if (r.kind == TraceKind::SpanBegin)
            spans[r.id] = {r.category, r.name, r.core, r.mm, r.at};

    std::stable_sort(records.begin(), records.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.at < b.at;
                     });

    auto filtered = [&](const char *category) {
        return options.categoryFilter != nullptr &&
               std::strcmp(options.categoryFilter, category) != 0;
    };

    std::string out;
    char buf[96];
    for (const TraceRecord &r : records) {
        switch (r.kind) {
          case TraceKind::Instant: {
            if (filtered(r.category))
                continue;
            std::string text = r.name;
            if (options.detail) {
                text = std::string("[") + r.category + "] " + r.name +
                       attribution(r.core, r.mm, r.arg);
            }
            appendLine(out, r.at, options.origin, text);
            break;
          }
          case TraceKind::SpanBegin: {
            if (filtered(r.category) || !options.detail)
                continue;
            appendLine(out, r.at, options.origin,
                       std::string("[") + r.category + "] " + r.name +
                           " {" + attribution(r.core, r.mm, r.arg));
            break;
          }
          case TraceKind::SpanEnd: {
            auto it = spans.find(r.id);
            if (it == spans.end() || filtered(it->second.category) ||
                !options.detail)
                continue;
            std::snprintf(buf, sizeof buf, "} %s (%.2f us)",
                          it->second.name,
                          (r.at - it->second.begin) / 1000.0);
            appendLine(out, r.at, options.origin, buf);
            break;
          }
          case TraceKind::Counter: {
            if (filtered(r.category) || !options.detail)
                continue;
            std::snprintf(buf, sizeof buf, "%s = %g", r.name, r.value);
            appendLine(out, r.at, options.origin,
                       std::string("[") + r.category + "] " + buf);
            break;
          }
        }
    }
    return out;
}

void
writeTextTimeline(const TraceRecorder &recorder,
                  const TextDumpOptions &options, std::FILE *out)
{
    const std::string text = textTimeline(recorder, options);
    std::fputs(text.c_str(), out);
}

} // namespace latr
