/**
 * @file
 * Chrome-trace sink: renders a TraceRecorder snapshot as the JSON
 * Trace Event Format that chrome://tracing and Perfetto load
 * directly. The mapping follows the machine's structure: NUMA
 * sockets become "processes", cores become "threads", so the
 * per-core anatomy of a shootdown (the paper's figures 2 and 3)
 * reads off the timeline visually. Records without core attribution
 * land on a synthetic "machine" process; counter samples become
 * counter tracks.
 */

#ifndef LATR_TRACE_CHROME_TRACE_HH_
#define LATR_TRACE_CHROME_TRACE_HH_

#include <ostream>
#include <string>

#include "trace/trace.hh"

namespace latr
{

class NumaTopology;

/**
 * Write the trace as Chrome Trace Event Format JSON.
 *
 * @param recorder the recorder to snapshot.
 * @param topo maps cores to sockets ("processes"); when nullptr,
 *        every core lands on one process.
 * @param os destination stream.
 */
void writeChromeTrace(const TraceRecorder &recorder,
                      const NumaTopology *topo, std::ostream &os);

/** As writeChromeTrace, into a string. */
std::string chromeTraceJson(const TraceRecorder &recorder,
                            const NumaTopology *topo);

/**
 * As writeChromeTrace, into the file at @p path.
 * @return false if the file could not be opened.
 */
bool writeChromeTraceFile(const TraceRecorder &recorder,
                          const NumaTopology *topo,
                          const std::string &path);

} // namespace latr

#endif // LATR_TRACE_CHROME_TRACE_HH_
