/**
 * @file
 * Structured event tracing: a low-overhead, per-machine recorder of
 * typed trace records — begin/end *spans*, *instant* events, and
 * *counter* samples — held in a bounded ring buffer and attributed
 * to a core, an address space, and a (category, name) pair. The
 * recorder is the in-memory half of the subsystem; the sinks
 * (chrome_trace.hh, text_dump.hh) turn a snapshot into a
 * Perfetto/chrome://tracing-loadable JSON file or a human-readable
 * timeline, the latter subsuming examples/timeline_trace's output.
 *
 * Design constraints, in order:
 *  - a *disabled* recorder must cost one predictable branch per
 *    emission site (every emit method is an inline enabled_ check
 *    that falls through to a cold out-of-line body);
 *  - memory is bounded: the ring overwrites the oldest record and
 *    counts what it dropped, so tracing can stay on for arbitrarily
 *    long runs;
 *  - records carry `const char *` labels so the hot path never
 *    allocates; dynamic labels go through intern() (cold path).
 */

#ifndef LATR_TRACE_TRACE_HH_
#define LATR_TRACE_TRACE_HH_

#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace latr
{

class EventQueue;

/** Identifies one begin/end span pair. 0 means "no span". */
using SpanId = std::uint64_t;

constexpr SpanId kSpanNone = 0;

/** Attribution sentinel: the record belongs to no particular core. */
constexpr CoreId kTraceNoCore = std::numeric_limits<CoreId>::max();

/** Attribution sentinel: the record belongs to no address space. */
constexpr MmId kTraceNoMm = 0;

/** The type of one trace record. */
enum class TraceKind : std::uint8_t
{
    SpanBegin, ///< opens the span identified by `id`
    SpanEnd,   ///< closes the span identified by `id`
    Instant,   ///< a point event
    Counter,   ///< a sampled value (rendered as a counter track)
};

/** One fixed-size record in the ring buffer. */
struct TraceRecord
{
    Tick at = 0;
    SpanId id = kSpanNone;
    /** Static or interned strings; never owned by the record. */
    const char *category = "";
    const char *name = "";
    TraceKind kind = TraceKind::Instant;
    CoreId core = kTraceNoCore;
    MmId mm = kTraceNoMm;
    /** Free-form integer payload (page counts, target cores, ...). */
    std::uint64_t arg = 0;
    /** Counter records: the sampled value. */
    double value = 0.0;
};

/**
 * The per-machine trace recorder. Off by default; when off, every
 * emission site is a single branch and nothing is written.
 */
class TraceRecorder
{
  public:
    static constexpr std::size_t kDefaultCapacity = 1 << 16;

    explicit TraceRecorder(std::size_t capacity = kDefaultCapacity);

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /// @name Control
    /// @{

    bool enabled() const { return enabled_; }

    /** Turn recording on/off. Existing records are kept. */
    void setEnabled(bool on) { enabled_ = on; }

    /**
     * Use @p queue as the time source for the emit overloads that do
     * not pass an explicit tick (e.g. TLB flushes, which have no
     * notion of time themselves).
     */
    void attachClock(const EventQueue *queue) { clock_ = queue; }

    /** Current tick of the attached clock (0 when unattached). */
    Tick now() const;

    /** Resize the ring (drops recorded content). */
    void setCapacity(std::size_t capacity);

    /// @}

    /// @name Emission (all single-branch no-ops when disabled)
    /// @{

    /**
     * Open a span at @p at. Returns the id to close it with, or
     * kSpanNone when disabled (endSpan ignores kSpanNone, so call
     * sites need no second check).
     */
    SpanId
    beginSpan(const char *category, const char *name, Tick at,
              CoreId core = kTraceNoCore, MmId mm = kTraceNoMm,
              std::uint64_t arg = 0)
    {
        if (!enabled_)
            return kSpanNone;
        return beginSpanSlow(category, name, at, core, mm, arg);
    }

    /** Close span @p id at @p at. No-op for kSpanNone. */
    void
    endSpan(SpanId id, Tick at)
    {
        if (!enabled_ || id == kSpanNone)
            return;
        endSpanSlow(id, at);
    }

    /** Record a point event. */
    void
    instant(const char *category, const char *name, Tick at,
            CoreId core = kTraceNoCore, MmId mm = kTraceNoMm,
            std::uint64_t arg = 0)
    {
        if (!enabled_)
            return;
        instantSlow(category, name, at, core, mm, arg);
    }

    /** Record a point event at the attached clock's current time. */
    void
    instantNow(const char *category, const char *name,
               CoreId core = kTraceNoCore, MmId mm = kTraceNoMm,
               std::uint64_t arg = 0)
    {
        if (!enabled_)
            return;
        instantSlow(category, name, now(), core, mm, arg);
    }

    /** Sample a counter value (rendered as a counter track). */
    void
    counter(const char *category, const char *name, Tick at,
            double value, CoreId core = kTraceNoCore)
    {
        if (!enabled_)
            return;
        counterSlow(category, name, at, value, core);
    }

    /// @}

    /**
     * Copy @p text into recorder-owned storage and return a stable
     * pointer usable as a record label. Deduplicated; intended for
     * cold paths (examples, error annotations), not hot loops.
     */
    const char *intern(const std::string &text);

    /// @name Inspection
    /// @{

    std::size_t capacity() const { return capacity_; }

    /** Records currently held (<= capacity). */
    std::size_t size() const;

    /** Records overwritten because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

    /** Records ever emitted while enabled. */
    std::uint64_t totalRecorded() const { return total_; }

    /** Drop all records (capacity and enablement unchanged). */
    void clear();

    /**
     * The held records in emission order. Note ticks are *not*
     * necessarily nondecreasing: instrumentation often knows an
     * operation's end tick at its start and emits both immediately.
     * Sinks sort (stably) by tick.
     */
    std::vector<TraceRecord> snapshot() const;

    /// @}

  private:
    SpanId beginSpanSlow(const char *category, const char *name,
                         Tick at, CoreId core, MmId mm,
                         std::uint64_t arg);
    void endSpanSlow(SpanId id, Tick at);
    void instantSlow(const char *category, const char *name, Tick at,
                     CoreId core, MmId mm, std::uint64_t arg);
    void counterSlow(const char *category, const char *name, Tick at,
                     double value, CoreId core);

    void push(const TraceRecord &record);

    bool enabled_ = false;
    const EventQueue *clock_ = nullptr;

    std::size_t capacity_;
    /** Ring storage; grows to capacity_ then wraps via writeAt_. */
    std::vector<TraceRecord> ring_;
    std::size_t writeAt_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t total_ = 0;
    SpanId nextSpan_ = 1;

    /** Interned dynamic labels (stable addresses). */
    std::deque<std::string> internPool_;
    std::unordered_map<std::string, const char *> internIndex_;
};

} // namespace latr

#endif // LATR_TRACE_TRACE_HH_
