#include "trace/chrome_trace.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>

#include "topo/topology.hh"

namespace latr
{

namespace
{

/** JSON string escape (labels are identifiers, but be safe). */
std::string
jsonEscape(const char *s)
{
    std::string out;
    for (const char *p = s; *p; ++p) {
        const char c = *p;
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Ticks (ns) to chrome-trace microseconds. */
double
tsOf(Tick at)
{
    return static_cast<double>(at) / 1000.0;
}

struct TrackId
{
    std::uint32_t pid;
    std::uint32_t tid;
};

/** Socket as pid, core as tid; unattributed records on a synthetic
 *  "machine" process one past the last socket. */
TrackId
trackOf(CoreId core, const NumaTopology *topo)
{
    if (core == kTraceNoCore) {
        const std::uint32_t machine_pid =
            topo ? topo->sockets() : 1;
        return {machine_pid, 0};
    }
    const std::uint32_t pid =
        topo && core < topo->totalCores() ? topo->nodeOf(core) : 0;
    return {pid, core + 1};
}

void
writeCommonFields(std::ostream &os, const TraceRecord &r,
                  const TrackId &track)
{
    os << "\"name\":\"" << jsonEscape(r.name) << "\",\"cat\":\""
       << jsonEscape(*r.category ? r.category : "latr")
       << "\",\"pid\":" << track.pid << ",\"tid\":" << track.tid
       << ",\"ts\":" << tsOf(r.at);
}

void
writeArgs(std::ostream &os, const TraceRecord &r)
{
    os << ",\"args\":{\"mm\":" << r.mm << ",\"arg\":" << r.arg << "}";
}

} // namespace

void
writeChromeTrace(const TraceRecorder &recorder,
                 const NumaTopology *topo, std::ostream &os)
{
    std::vector<TraceRecord> records = recorder.snapshot();

    // Pair spans: begin records indexed by id, matched to the end
    // record's tick. A begin whose end was never emitted (or was
    // overwritten by ring wraparound) closes at the last tick seen,
    // so partial traces still load.
    std::unordered_map<SpanId, Tick> span_end;
    Tick last_tick = 0;
    for (const TraceRecord &r : records) {
        last_tick = std::max(last_tick, r.at);
        if (r.kind == TraceKind::SpanEnd)
            span_end[r.id] = r.at;
    }

    // Stable-sort by tick: instrumentation often emits a span's end
    // (computed up front) before later records with earlier ticks.
    std::stable_sort(records.begin(), records.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.at < b.at;
                     });

    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    // Track-naming metadata: sockets as processes, cores as threads.
    const std::uint32_t sockets = topo ? topo->sockets() : 1;
    for (std::uint32_t s = 0; s < sockets; ++s) {
        sep();
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << s
           << ",\"args\":{\"name\":\"socket " << s << "\"}}";
    }
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << sockets
       << ",\"args\":{\"name\":\"machine\"}}";
    if (topo) {
        for (CoreId c = 0; c < topo->totalCores(); ++c) {
            const TrackId track = trackOf(c, topo);
            sep();
            os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
               << track.pid << ",\"tid\":" << track.tid
               << ",\"args\":{\"name\":\"core " << c << "\"}}";
        }
    }

    for (const TraceRecord &r : records) {
        const TrackId track = trackOf(r.core, topo);
        switch (r.kind) {
          case TraceKind::SpanBegin: {
            auto it = span_end.find(r.id);
            const Tick end = it != span_end.end()
                                 ? std::max(it->second, r.at)
                                 : std::max(last_tick, r.at);
            sep();
            os << "{";
            writeCommonFields(os, r, track);
            os << ",\"ph\":\"X\",\"dur\":" << tsOf(end - r.at);
            writeArgs(os, r);
            os << "}";
            break;
          }
          case TraceKind::SpanEnd:
            // Consumed by the matching begin.
            break;
          case TraceKind::Instant: {
            sep();
            os << "{";
            writeCommonFields(os, r, track);
            // Thread scope when attributed to a core, else global.
            os << ",\"ph\":\"i\",\"s\":\""
               << (r.core == kTraceNoCore ? "g" : "t") << "\"";
            writeArgs(os, r);
            os << "}";
            break;
          }
          case TraceKind::Counter: {
            sep();
            os << "{";
            writeCommonFields(os, r, track);
            os << ",\"ph\":\"C\",\"args\":{\"value\":" << r.value
               << "}}";
            break;
          }
        }
    }
    os << "\n]}\n";
}

std::string
chromeTraceJson(const TraceRecorder &recorder, const NumaTopology *topo)
{
    std::ostringstream os;
    writeChromeTrace(recorder, topo, os);
    return os.str();
}

bool
writeChromeTraceFile(const TraceRecorder &recorder,
                     const NumaTopology *topo, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeChromeTrace(recorder, topo, out);
    return static_cast<bool>(out);
}

} // namespace latr
