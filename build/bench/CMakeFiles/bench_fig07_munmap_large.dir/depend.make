# Empty dependencies file for bench_fig07_munmap_large.
# This may be replaced when dependencies are built.
