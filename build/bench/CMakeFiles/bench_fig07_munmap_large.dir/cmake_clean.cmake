file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_munmap_large.dir/bench_fig07_munmap_large.cc.o"
  "CMakeFiles/bench_fig07_munmap_large.dir/bench_fig07_munmap_large.cc.o.d"
  "bench_fig07_munmap_large"
  "bench_fig07_munmap_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_munmap_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
