file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_hw_assist.dir/bench_ext_hw_assist.cc.o"
  "CMakeFiles/bench_ext_hw_assist.dir/bench_ext_hw_assist.cc.o.d"
  "bench_ext_hw_assist"
  "bench_ext_hw_assist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_hw_assist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
