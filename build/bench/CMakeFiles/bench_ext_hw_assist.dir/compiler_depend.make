# Empty compiler generated dependencies file for bench_ext_hw_assist.
# This may be replaced when dependencies are built.
