# Empty dependencies file for bench_fig10_parsec.
# This may be replaced when dependencies are built.
