file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_autonuma.dir/bench_fig11_autonuma.cc.o"
  "CMakeFiles/bench_fig11_autonuma.dir/bench_fig11_autonuma.cc.o.d"
  "bench_fig11_autonuma"
  "bench_fig11_autonuma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_autonuma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
