# Empty dependencies file for bench_fig11_autonuma.
# This may be replaced when dependencies are built.
