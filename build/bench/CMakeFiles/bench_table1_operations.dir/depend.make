# Empty dependencies file for bench_table1_operations.
# This may be replaced when dependencies are built.
