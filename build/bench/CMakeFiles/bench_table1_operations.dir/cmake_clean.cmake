file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_operations.dir/bench_table1_operations.cc.o"
  "CMakeFiles/bench_table1_operations.dir/bench_table1_operations.cc.o.d"
  "bench_table1_operations"
  "bench_table1_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
