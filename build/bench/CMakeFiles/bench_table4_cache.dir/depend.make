# Empty dependencies file for bench_table4_cache.
# This may be replaced when dependencies are built.
