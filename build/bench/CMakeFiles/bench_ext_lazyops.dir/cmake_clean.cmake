file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_lazyops.dir/bench_ext_lazyops.cc.o"
  "CMakeFiles/bench_ext_lazyops.dir/bench_ext_lazyops.cc.o.d"
  "bench_ext_lazyops"
  "bench_ext_lazyops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_lazyops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
