# Empty dependencies file for bench_ext_lazyops.
# This may be replaced when dependencies are built.
