file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_munmap_pages.dir/bench_fig08_munmap_pages.cc.o"
  "CMakeFiles/bench_fig08_munmap_pages.dir/bench_fig08_munmap_pages.cc.o.d"
  "bench_fig08_munmap_pages"
  "bench_fig08_munmap_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_munmap_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
