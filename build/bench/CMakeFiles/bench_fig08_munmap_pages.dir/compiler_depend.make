# Empty compiler generated dependencies file for bench_fig08_munmap_pages.
# This may be replaced when dependencies are built.
