file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_hugepages.dir/bench_ext_hugepages.cc.o"
  "CMakeFiles/bench_ext_hugepages.dir/bench_ext_hugepages.cc.o.d"
  "bench_ext_hugepages"
  "bench_ext_hugepages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_hugepages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
