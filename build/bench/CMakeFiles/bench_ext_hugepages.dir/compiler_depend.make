# Empty compiler generated dependencies file for bench_ext_hugepages.
# This may be replaced when dependencies are built.
