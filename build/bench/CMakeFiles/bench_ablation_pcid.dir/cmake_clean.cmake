file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pcid.dir/bench_ablation_pcid.cc.o"
  "CMakeFiles/bench_ablation_pcid.dir/bench_ablation_pcid.cc.o.d"
  "bench_ablation_pcid"
  "bench_ablation_pcid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pcid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
