# Empty compiler generated dependencies file for bench_ablation_pcid.
# This may be replaced when dependencies are built.
