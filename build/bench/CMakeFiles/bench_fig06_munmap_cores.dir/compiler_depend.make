# Empty compiler generated dependencies file for bench_fig06_munmap_cores.
# This may be replaced when dependencies are built.
