file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_munmap_cores.dir/bench_fig06_munmap_cores.cc.o"
  "CMakeFiles/bench_fig06_munmap_cores.dir/bench_fig06_munmap_cores.cc.o.d"
  "bench_fig06_munmap_cores"
  "bench_fig06_munmap_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_munmap_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
