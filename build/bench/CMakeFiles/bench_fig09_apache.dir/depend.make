# Empty dependencies file for bench_fig09_apache.
# This may be replaced when dependencies are built.
