file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_apache.dir/bench_fig09_apache.cc.o"
  "CMakeFiles/bench_fig09_apache.dir/bench_fig09_apache.cc.o.d"
  "bench_fig09_apache"
  "bench_fig09_apache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_apache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
