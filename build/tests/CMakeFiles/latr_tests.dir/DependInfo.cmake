
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_abis_policy.cc" "tests/CMakeFiles/latr_tests.dir/test_abis_policy.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_abis_policy.cc.o.d"
  "/root/repo/tests/test_address_space.cc" "tests/CMakeFiles/latr_tests.dir/test_address_space.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_address_space.cc.o.d"
  "/root/repo/tests/test_autonuma.cc" "tests/CMakeFiles/latr_tests.dir/test_autonuma.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_autonuma.cc.o.d"
  "/root/repo/tests/test_barrelfish_policy.cc" "tests/CMakeFiles/latr_tests.dir/test_barrelfish_policy.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_barrelfish_policy.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/latr_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_chaos.cc" "tests/CMakeFiles/latr_tests.dir/test_chaos.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_chaos.cc.o.d"
  "/root/repo/tests/test_compaction.cc" "tests/CMakeFiles/latr_tests.dir/test_compaction.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_compaction.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/latr_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_fault.cc" "tests/CMakeFiles/latr_tests.dir/test_fault.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_fault.cc.o.d"
  "/root/repo/tests/test_frame_allocator.cc" "tests/CMakeFiles/latr_tests.dir/test_frame_allocator.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_frame_allocator.cc.o.d"
  "/root/repo/tests/test_hugepages.cc" "tests/CMakeFiles/latr_tests.dir/test_hugepages.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_hugepages.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/latr_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_invariant.cc" "tests/CMakeFiles/latr_tests.dir/test_invariant.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_invariant.cc.o.d"
  "/root/repo/tests/test_ipi.cc" "tests/CMakeFiles/latr_tests.dir/test_ipi.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_ipi.cc.o.d"
  "/root/repo/tests/test_kernel.cc" "tests/CMakeFiles/latr_tests.dir/test_kernel.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_kernel.cc.o.d"
  "/root/repo/tests/test_khugepaged.cc" "tests/CMakeFiles/latr_tests.dir/test_khugepaged.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_khugepaged.cc.o.d"
  "/root/repo/tests/test_ksm.cc" "tests/CMakeFiles/latr_tests.dir/test_ksm.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_ksm.cc.o.d"
  "/root/repo/tests/test_latr_policy.cc" "tests/CMakeFiles/latr_tests.dir/test_latr_policy.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_latr_policy.cc.o.d"
  "/root/repo/tests/test_linux_policy.cc" "tests/CMakeFiles/latr_tests.dir/test_linux_policy.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_linux_policy.cc.o.d"
  "/root/repo/tests/test_machine.cc" "tests/CMakeFiles/latr_tests.dir/test_machine.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_machine.cc.o.d"
  "/root/repo/tests/test_page_table.cc" "tests/CMakeFiles/latr_tests.dir/test_page_table.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_page_table.cc.o.d"
  "/root/repo/tests/test_property.cc" "tests/CMakeFiles/latr_tests.dir/test_property.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_property.cc.o.d"
  "/root/repo/tests/test_rng_stats.cc" "tests/CMakeFiles/latr_tests.dir/test_rng_stats.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_rng_stats.cc.o.d"
  "/root/repo/tests/test_scheduler.cc" "tests/CMakeFiles/latr_tests.dir/test_scheduler.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_scheduler.cc.o.d"
  "/root/repo/tests/test_sem.cc" "tests/CMakeFiles/latr_tests.dir/test_sem.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_sem.cc.o.d"
  "/root/repo/tests/test_swap.cc" "tests/CMakeFiles/latr_tests.dir/test_swap.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_swap.cc.o.d"
  "/root/repo/tests/test_tlb.cc" "tests/CMakeFiles/latr_tests.dir/test_tlb.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_tlb.cc.o.d"
  "/root/repo/tests/test_topology.cc" "tests/CMakeFiles/latr_tests.dir/test_topology.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_topology.cc.o.d"
  "/root/repo/tests/test_types.cc" "tests/CMakeFiles/latr_tests.dir/test_types.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_types.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/latr_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/latr_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/latr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
