# Empty compiler generated dependencies file for latr_tests.
# This may be replaced when dependencies are built.
