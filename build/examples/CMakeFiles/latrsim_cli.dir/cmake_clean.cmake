file(REMOVE_RECURSE
  "CMakeFiles/latrsim_cli.dir/latrsim_cli.cc.o"
  "CMakeFiles/latrsim_cli.dir/latrsim_cli.cc.o.d"
  "latrsim_cli"
  "latrsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latrsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
