# Empty dependencies file for latrsim_cli.
# This may be replaced when dependencies are built.
