file(REMOVE_RECURSE
  "CMakeFiles/numa_migration.dir/numa_migration.cc.o"
  "CMakeFiles/numa_migration.dir/numa_migration.cc.o.d"
  "numa_migration"
  "numa_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numa_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
