# Empty dependencies file for numa_migration.
# This may be replaced when dependencies are built.
