# Empty compiler generated dependencies file for race_semantics.
# This may be replaced when dependencies are built.
