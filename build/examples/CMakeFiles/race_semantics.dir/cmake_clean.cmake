file(REMOVE_RECURSE
  "CMakeFiles/race_semantics.dir/race_semantics.cc.o"
  "CMakeFiles/race_semantics.dir/race_semantics.cc.o.d"
  "race_semantics"
  "race_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/race_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
