# Empty dependencies file for latr.
# This may be replaced when dependencies are built.
