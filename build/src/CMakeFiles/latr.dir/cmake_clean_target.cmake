file(REMOVE_RECURSE
  "liblatr.a"
)
