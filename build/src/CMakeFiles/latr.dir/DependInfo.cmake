
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cache.cc" "src/CMakeFiles/latr.dir/hw/cache.cc.o" "gcc" "src/CMakeFiles/latr.dir/hw/cache.cc.o.d"
  "/root/repo/src/hw/ipi.cc" "src/CMakeFiles/latr.dir/hw/ipi.cc.o" "gcc" "src/CMakeFiles/latr.dir/hw/ipi.cc.o.d"
  "/root/repo/src/hw/tlb.cc" "src/CMakeFiles/latr.dir/hw/tlb.cc.o" "gcc" "src/CMakeFiles/latr.dir/hw/tlb.cc.o.d"
  "/root/repo/src/machine/machine.cc" "src/CMakeFiles/latr.dir/machine/machine.cc.o" "gcc" "src/CMakeFiles/latr.dir/machine/machine.cc.o.d"
  "/root/repo/src/machine/machine_stats.cc" "src/CMakeFiles/latr.dir/machine/machine_stats.cc.o" "gcc" "src/CMakeFiles/latr.dir/machine/machine_stats.cc.o.d"
  "/root/repo/src/mem/frame_allocator.cc" "src/CMakeFiles/latr.dir/mem/frame_allocator.cc.o" "gcc" "src/CMakeFiles/latr.dir/mem/frame_allocator.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/CMakeFiles/latr.dir/mem/page_table.cc.o" "gcc" "src/CMakeFiles/latr.dir/mem/page_table.cc.o.d"
  "/root/repo/src/numa/autonuma.cc" "src/CMakeFiles/latr.dir/numa/autonuma.cc.o" "gcc" "src/CMakeFiles/latr.dir/numa/autonuma.cc.o.d"
  "/root/repo/src/numa/compaction.cc" "src/CMakeFiles/latr.dir/numa/compaction.cc.o" "gcc" "src/CMakeFiles/latr.dir/numa/compaction.cc.o.d"
  "/root/repo/src/numa/khugepaged.cc" "src/CMakeFiles/latr.dir/numa/khugepaged.cc.o" "gcc" "src/CMakeFiles/latr.dir/numa/khugepaged.cc.o.d"
  "/root/repo/src/numa/ksm.cc" "src/CMakeFiles/latr.dir/numa/ksm.cc.o" "gcc" "src/CMakeFiles/latr.dir/numa/ksm.cc.o.d"
  "/root/repo/src/numa/migration.cc" "src/CMakeFiles/latr.dir/numa/migration.cc.o" "gcc" "src/CMakeFiles/latr.dir/numa/migration.cc.o.d"
  "/root/repo/src/numa/swap.cc" "src/CMakeFiles/latr.dir/numa/swap.cc.o" "gcc" "src/CMakeFiles/latr.dir/numa/swap.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/CMakeFiles/latr.dir/os/kernel.cc.o" "gcc" "src/CMakeFiles/latr.dir/os/kernel.cc.o.d"
  "/root/repo/src/os/process.cc" "src/CMakeFiles/latr.dir/os/process.cc.o" "gcc" "src/CMakeFiles/latr.dir/os/process.cc.o.d"
  "/root/repo/src/os/scheduler.cc" "src/CMakeFiles/latr.dir/os/scheduler.cc.o" "gcc" "src/CMakeFiles/latr.dir/os/scheduler.cc.o.d"
  "/root/repo/src/os/task.cc" "src/CMakeFiles/latr.dir/os/task.cc.o" "gcc" "src/CMakeFiles/latr.dir/os/task.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/latr.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/latr.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/latr.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/latr.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/latr.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/latr.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/latr.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/latr.dir/sim/stats.cc.o.d"
  "/root/repo/src/tlbcoh/abis_policy.cc" "src/CMakeFiles/latr.dir/tlbcoh/abis_policy.cc.o" "gcc" "src/CMakeFiles/latr.dir/tlbcoh/abis_policy.cc.o.d"
  "/root/repo/src/tlbcoh/barrelfish_policy.cc" "src/CMakeFiles/latr.dir/tlbcoh/barrelfish_policy.cc.o" "gcc" "src/CMakeFiles/latr.dir/tlbcoh/barrelfish_policy.cc.o.d"
  "/root/repo/src/tlbcoh/invariant.cc" "src/CMakeFiles/latr.dir/tlbcoh/invariant.cc.o" "gcc" "src/CMakeFiles/latr.dir/tlbcoh/invariant.cc.o.d"
  "/root/repo/src/tlbcoh/latr_policy.cc" "src/CMakeFiles/latr.dir/tlbcoh/latr_policy.cc.o" "gcc" "src/CMakeFiles/latr.dir/tlbcoh/latr_policy.cc.o.d"
  "/root/repo/src/tlbcoh/linux_policy.cc" "src/CMakeFiles/latr.dir/tlbcoh/linux_policy.cc.o" "gcc" "src/CMakeFiles/latr.dir/tlbcoh/linux_policy.cc.o.d"
  "/root/repo/src/tlbcoh/policy.cc" "src/CMakeFiles/latr.dir/tlbcoh/policy.cc.o" "gcc" "src/CMakeFiles/latr.dir/tlbcoh/policy.cc.o.d"
  "/root/repo/src/topo/cost_model.cc" "src/CMakeFiles/latr.dir/topo/cost_model.cc.o" "gcc" "src/CMakeFiles/latr.dir/topo/cost_model.cc.o.d"
  "/root/repo/src/topo/machine_config.cc" "src/CMakeFiles/latr.dir/topo/machine_config.cc.o" "gcc" "src/CMakeFiles/latr.dir/topo/machine_config.cc.o.d"
  "/root/repo/src/topo/topology.cc" "src/CMakeFiles/latr.dir/topo/topology.cc.o" "gcc" "src/CMakeFiles/latr.dir/topo/topology.cc.o.d"
  "/root/repo/src/vm/address_space.cc" "src/CMakeFiles/latr.dir/vm/address_space.cc.o" "gcc" "src/CMakeFiles/latr.dir/vm/address_space.cc.o.d"
  "/root/repo/src/vm/fault.cc" "src/CMakeFiles/latr.dir/vm/fault.cc.o" "gcc" "src/CMakeFiles/latr.dir/vm/fault.cc.o.d"
  "/root/repo/src/vm/sem.cc" "src/CMakeFiles/latr.dir/vm/sem.cc.o" "gcc" "src/CMakeFiles/latr.dir/vm/sem.cc.o.d"
  "/root/repo/src/vm/vma.cc" "src/CMakeFiles/latr.dir/vm/vma.cc.o" "gcc" "src/CMakeFiles/latr.dir/vm/vma.cc.o.d"
  "/root/repo/src/workload/lowshootdown.cc" "src/CMakeFiles/latr.dir/workload/lowshootdown.cc.o" "gcc" "src/CMakeFiles/latr.dir/workload/lowshootdown.cc.o.d"
  "/root/repo/src/workload/microbench.cc" "src/CMakeFiles/latr.dir/workload/microbench.cc.o" "gcc" "src/CMakeFiles/latr.dir/workload/microbench.cc.o.d"
  "/root/repo/src/workload/numabench.cc" "src/CMakeFiles/latr.dir/workload/numabench.cc.o" "gcc" "src/CMakeFiles/latr.dir/workload/numabench.cc.o.d"
  "/root/repo/src/workload/parsec.cc" "src/CMakeFiles/latr.dir/workload/parsec.cc.o" "gcc" "src/CMakeFiles/latr.dir/workload/parsec.cc.o.d"
  "/root/repo/src/workload/webserver.cc" "src/CMakeFiles/latr.dir/workload/webserver.cc.o" "gcc" "src/CMakeFiles/latr.dir/workload/webserver.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/latr.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/latr.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
